//! Tiered-cascade benchmark: the `BENCH_pr6.json` harness mode.
//!
//! Compares the detector with the tiered pre-solver screens on (the
//! default) against `--no-tiers` on *flag-handoff* workloads: one
//! sync-free racy pair at the head (Tier A confirms it without a solver
//! call), then thousands of lock-protected message-passing blocks whose
//! only QC-surviving COP per block is entailment-ordered through a forced
//! flag read (Tier B refutes each one without a solver call). Without the
//! cascade every one of those COPs is encoded and solved to `Unsat`; with
//! it the solver is never invoked.
//!
//! ```sh
//! cargo run -p rvbench --release --bin tier_pipeline -- --out BENCH_pr6.json
//! ```
//!
//! # Document schema (version 1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "suite": "pr6",
//!   "mode": "full",
//!   "jobs": 4,
//!   "workloads": [
//!     {"name": "tier_large", "events": 99163, "window_size": 10000,
//!      "tiers":    {"races": 1, "sat": 1, "unsat": 11000, "cops_solved": 11001,
//!                   "tier_confirmed": 1, "tier_refuted": 11000, "tier_residue": 0,
//!                   "solver_solves": 0, "wall_time_us": 310521},
//!      "no_tiers": {"races": 1, "sat": 1, "unsat": 11000, "cops_solved": 11001,
//!                   "tier_confirmed": 0, "tier_refuted": 0, "tier_residue": 0,
//!                   "solver_solves": 11001, "wall_time_us": 2471933}}
//!   ]
//! }
//! ```
//!
//! `races`, `sat`, `unsat` and `cops_solved` are count-type and must be
//! equal between the two runs for every workload (the soundness contract:
//! the cascade never changes a verdict). In the `no_tiers` run all three
//! tier counters must be zero; in the `tiers` run they must partition
//! `cops_solved`. `wall_time_us` and `solver_solves` are run-shape
//! dependent; only `"full"` documents must show, on the largest workload,
//! the ≥2x solver-call reduction, the ≥1.3x wall-clock speedup, and the
//! residue strictly below the COP total (the screens actually screened).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use rvcore::{DetectorConfig, RaceDetector};
use rvsim::workloads::Workload;
use rvtrace::{parse_json, ThreadId, TraceBuilder};

/// Version of the `BENCH_pr6.json` document. Bumped on any incompatible
/// change (key renames, section shape).
pub const TIER_BENCH_SCHEMA_VERSION: u64 = 1;

/// The suite tag stamped into every document this harness emits.
pub const TIER_BENCH_SUITE: &str = "pr6";

/// Detection knobs for a tier-bench run.
#[derive(Debug, Clone, Copy)]
pub struct TierBenchOptions {
    /// Per-COP solver budget.
    pub solver_timeout: Duration,
    /// Worker threads for both runs.
    pub jobs: usize,
}

impl Default for TierBenchOptions {
    fn default() -> Self {
        TierBenchOptions {
            solver_timeout: Duration::from_secs(10),
            jobs: 4,
        }
    }
}

/// Builds a flag-handoff workload: a sync-free racy pair on `h` at the
/// head, then `pairs` producer/consumer thread pairs each running `blocks`
/// rounds of lock-protected message passing. Per round `k`, the producer
/// writes a payload `y` *outside* its critical section and publishes a
/// fresh flag `f` inside it; the consumer reads the flag inside its own
/// critical section, branches on it, and only then reads the payload:
///
/// ```text
/// producer_j:  w y_jk 1;  acq l_j;  w f_jk 1;  rel l_j
/// consumer_j:  acq l_j;  r f_jk 1;  rel l_j;  branch;  r y_jk 1
/// ```
///
/// The flag COP dies in the quick check (common lock). The payload COP
/// `(w y_jk, r y_jk)` survives it — no common lock, no MHB — but the
/// branch forces the flag read, whose unique same-value justifier is the
/// producer's flag write, entailing `w y_jk → w f_jk → r f_jk → r y_jk`
/// in every sound reordering: Tier B refutes it, and so does the solver.
/// Payload and flag variables are distinct per round so every block is
/// its own COP with its own unique justifier.
pub fn flag_handoff_workload(name: &str, pairs: usize, blocks: usize) -> Workload {
    assert!(pairs >= 1 && blocks >= 1);
    let mut b = TraceBuilder::new();
    let h = b.var("h");
    let main = ThreadId::MAIN;
    let reader = b.fork(main);
    let producers: Vec<ThreadId> = (0..pairs).map(|_| b.fork(main)).collect();
    let consumers: Vec<ThreadId> = (0..pairs).map(|_| b.fork(main)).collect();
    let locks: Vec<_> = (0..pairs).map(|j| b.new_lock(&format!("l{j}"))).collect();

    // The head: the one real race, confirmable by a sync-preserving
    // reordering (Tier A's territory).
    b.write(main, h, 1);
    b.read(reader, h, 1);

    // The handoff tail, round-robin across the pairs so every window
    // carries blocks from every pair.
    for k in 0..blocks {
        for j in 0..pairs {
            let y = b.var(&format!("y{j}_{k}"));
            let f = b.var(&format!("f{j}_{k}"));
            b.write(producers[j], y, 1);
            b.acquire(producers[j], locks[j]);
            b.write(producers[j], f, 1);
            b.release(producers[j], locks[j]);
            b.acquire(consumers[j], locks[j]);
            b.read(consumers[j], f, 1);
            b.release(consumers[j], locks[j]);
            b.branch(consumers[j]);
            b.read(consumers[j], y, 1);
        }
    }
    Workload {
        name: name.to_string(),
        trace: b.finish(),
    }
}

/// The smallest flag-handoff workload, for smoke runs and the schema test.
pub fn smoke_tier_workloads() -> Vec<Workload> {
    vec![flag_handoff_workload("tier_small", 2, 4)]
}

/// The full set: the smoke size plus a ~100K-event workload where the
/// solver-call collapse dominates everything else.
pub fn full_tier_workloads() -> Vec<Workload> {
    vec![
        flag_handoff_workload("tier_small", 2, 4),
        flag_handoff_workload("tier_medium", 8, 60),
        flag_handoff_workload("tier_large", 40, 275),
    ]
}

fn us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

struct TierRun {
    races: u64,
    sat: u64,
    unsat: u64,
    cops_solved: u64,
    tier_confirmed: u64,
    tier_refuted: u64,
    tier_residue: u64,
    solver_solves: u64,
    wall: Duration,
}

fn run_once(workload: &Workload, opts: &TierBenchOptions, tiers: bool) -> TierRun {
    let cfg = DetectorConfig {
        solver_timeout: opts.solver_timeout,
        parallelism: opts.jobs,
        tiers,
        ..Default::default()
    };
    let t0 = Instant::now();
    let report = RaceDetector::with_config(cfg).detect(&workload.trace);
    TierRun {
        races: report.n_races() as u64,
        sat: report.stats.sat as u64,
        unsat: report.stats.unsat as u64,
        cops_solved: report.stats.cops_solved as u64,
        tier_confirmed: report.stats.tier_confirmed as u64,
        tier_refuted: report.stats.tier_refuted as u64,
        tier_residue: report.stats.tier_residue as u64,
        solver_solves: report.stats.solver_totals.solves,
        wall: t0.elapsed(),
    }
}

fn write_run(out: &mut String, key: &str, run: &TierRun) {
    let _ = write!(
        out,
        "\"{key}\": {{\"races\": {}, \"sat\": {}, \"unsat\": {}, \"cops_solved\": {},\n      \
         \"tier_confirmed\": {}, \"tier_refuted\": {}, \"tier_residue\": {},\n      \
         \"solver_solves\": {}, \"wall_time_us\": {}}}",
        run.races,
        run.sat,
        run.unsat,
        run.cops_solved,
        run.tier_confirmed,
        run.tier_refuted,
        run.tier_residue,
        run.solver_solves,
        us(run.wall),
    );
}

/// Runs each workload with the cascade on and off and returns the
/// versioned comparison document described in the module docs. `mode` is
/// stamped into the document and selects how much the validator enforces
/// (`"full"` adds the reduction/speedup/residue invariants).
pub fn run_tier_pipeline(workloads: &[Workload], opts: &TierBenchOptions, mode: &str) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": {TIER_BENCH_SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"suite\": \"{TIER_BENCH_SUITE}\",");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"jobs\": {},", opts.jobs);
    out.push_str("  \"workloads\": [");
    for (i, w) in workloads.iter().enumerate() {
        let tiers = run_once(w, opts, true);
        let no_tiers = run_once(w, opts, false);
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"events\": {}, \"window_size\": {},\n     ",
            w.name,
            w.trace.len(),
            DetectorConfig::default().window_size,
        );
        write_run(&mut out, "tiers", &tiers);
        out.push_str(",\n     ");
        write_run(&mut out, "no_tiers", &no_tiers);
        out.push('}');
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Integer fields each run sub-object must carry, all non-negative.
const RUN_INT_KEYS: [&str; 9] = [
    "races",
    "sat",
    "unsat",
    "cops_solved",
    "tier_confirmed",
    "tier_refuted",
    "tier_residue",
    "solver_solves",
    "wall_time_us",
];

/// Validates a `BENCH_pr6.json` document: version/suite/mode tags,
/// required keys, non-negative integers, verdict equality (`races`,
/// `sat`, `unsat`, `cops_solved`) between the two runs on every workload,
/// zeroed tier counters in the `no_tiers` run, the tier counters
/// partitioning `cops_solved` in the `tiers` run, and — for `"full"`
/// documents, on the largest workload — a ≥2x solver-call reduction, a
/// ≥1.3x wall-clock speedup, and `tier_residue` strictly below
/// `cops_solved`. Returns a description of the first violation.
pub fn validate_tier_bench_json(json: &str) -> Result<(), String> {
    let doc = parse_json(json).map_err(|e| format!("not valid JSON: {e}"))?;
    let version = doc
        .field("schema_version")
        .and_then(|v| v.as_int())
        .map_err(|e| e.to_string())?;
    if version != TIER_BENCH_SCHEMA_VERSION as i64 {
        return Err(format!(
            "schema_version is {version}, expected {TIER_BENCH_SCHEMA_VERSION}"
        ));
    }
    let suite = doc
        .field("suite")
        .and_then(|v| v.as_str().map(str::to_string))
        .map_err(|e| e.to_string())?;
    if suite != TIER_BENCH_SUITE {
        return Err(format!("suite is `{suite}`, expected `{TIER_BENCH_SUITE}`"));
    }
    let mode = doc
        .field("mode")
        .and_then(|v| v.as_str().map(str::to_string))
        .map_err(|e| e.to_string())?;
    if mode != "smoke" && mode != "full" {
        return Err(format!("mode is `{mode}`, expected `smoke` or `full`"));
    }
    let jobs = doc
        .field("jobs")
        .and_then(|v| v.as_int())
        .map_err(|e| format!("jobs: {e}"))?;
    if jobs <= 0 {
        return Err(format!("jobs must be positive, got {jobs}"));
    }
    let entries = doc
        .field("workloads")
        .and_then(|v| v.as_array().map(<[_]>::to_vec))
        .map_err(|e| format!("workloads: {e}"))?;
    if entries.is_empty() {
        return Err("workloads array is empty".into());
    }
    let mut largest: Option<(i64, String, [i64; 18])> = None;
    for (i, entry) in entries.iter().enumerate() {
        let name = entry
            .field("name")
            .and_then(|v| v.as_str().map(str::to_string))
            .map_err(|e| format!("workloads[{i}].name: {e}"))?;
        let top = |key: &str| -> Result<i64, String> {
            let v = entry
                .field(key)
                .and_then(|v| v.as_int())
                .map_err(|e| format!("workload `{name}`: {key}: {e}"))?;
            if v < 0 {
                return Err(format!("workload `{name}`: {key} is negative ({v})"));
            }
            Ok(v)
        };
        let events = top("events")?;
        top("window_size")?;
        let mut runs = [0i64; 18];
        for (r, run_key) in ["tiers", "no_tiers"].into_iter().enumerate() {
            let run = entry
                .field(run_key)
                .map_err(|e| format!("workload `{name}`: {run_key}: {e}"))?;
            for (k, key) in RUN_INT_KEYS.into_iter().enumerate() {
                let v = run
                    .field(key)
                    .and_then(|v| v.as_int())
                    .map_err(|e| format!("workload `{name}`: {run_key}.{key}: {e}"))?;
                if v < 0 {
                    return Err(format!(
                        "workload `{name}`: {run_key}.{key} is negative ({v})"
                    ));
                }
                runs[r * 9 + k] = v;
            }
        }
        let [t_races, t_sat, t_unsat, t_cops, t_conf, t_ref, t_res, _, _, n_races, n_sat, n_unsat, n_cops, n_conf, n_ref, n_res, _, _] =
            runs;
        for (what, t, n) in [
            ("races", t_races, n_races),
            ("sat", t_sat, n_sat),
            ("unsat", t_unsat, n_unsat),
            ("cops_solved", t_cops, n_cops),
        ] {
            if t != n {
                return Err(format!(
                    "workload `{name}`: tiers {what} is {t} but no_tiers {what} is {n} \
                     — the cascade must not change the verdict"
                ));
            }
        }
        if n_conf != 0 || n_ref != 0 || n_res != 0 {
            return Err(format!(
                "workload `{name}`: the no_tiers run carries non-zero tier counters \
                 ({n_conf}/{n_ref}/{n_res})"
            ));
        }
        if t_conf + t_ref + t_res != t_cops {
            return Err(format!(
                "workload `{name}`: tier counters {t_conf}+{t_ref}+{t_res} do not \
                 partition cops_solved ({t_cops})"
            ));
        }
        if largest.as_ref().is_none_or(|(e, ..)| events > *e) {
            largest = Some((events, name, runs));
        }
    }
    if mode == "full" {
        let (_, name, runs) = largest.expect("workloads array checked non-empty");
        let [_, _, _, t_cops, _, _, t_res, t_solves, t_wall, _, _, _, _, _, _, _, n_solves, n_wall] =
            runs;
        if t_res >= t_cops {
            return Err(format!(
                "workload `{name}`: tier_residue ({t_res}) is not below cops_solved \
                 ({t_cops}) — the screens decided nothing"
            ));
        }
        if n_solves < 2 * t_solves {
            return Err(format!(
                "workload `{name}`: no_tiers solver_solves ({n_solves}) are not ≥2x \
                 tiers ({t_solves})"
            ));
        }
        if 10 * n_wall < 13 * t_wall {
            return Err(format!(
                "workload `{name}`: no_tiers wall_time_us ({n_wall}) is not ≥1.3x \
                 tiers ({t_wall})"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_tier_pipeline_emits_valid_document() {
        let json = run_tier_pipeline(
            &smoke_tier_workloads(),
            &TierBenchOptions::default(),
            "smoke",
        );
        validate_tier_bench_json(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        assert!(json.contains("\"suite\": \"pr6\""), "{json}");
        assert!(json.contains("\"name\": \"tier_small\""), "{json}");
    }

    #[test]
    fn validator_rejects_tampered_documents() {
        let json = run_tier_pipeline(
            &smoke_tier_workloads(),
            &TierBenchOptions::default(),
            "smoke",
        );
        let wrong_version = json.replace("\"schema_version\": 1", "\"schema_version\": 99");
        assert!(validate_tier_bench_json(&wrong_version)
            .unwrap_err()
            .contains("schema_version"));
        let wrong_suite = json.replace("\"suite\": \"pr6\"", "\"suite\": \"pr5\"");
        assert!(validate_tier_bench_json(&wrong_suite)
            .unwrap_err()
            .contains("suite"));
        assert!(validate_tier_bench_json("not json").is_err());
        assert!(validate_tier_bench_json("{}").is_err());
    }

    #[test]
    fn validator_enforces_verdicts_counters_and_full_mode_ratios() {
        // Hand-built document: verdicts disagree between the runs.
        let disagreeing = r#"{
  "schema_version": 1, "suite": "pr6", "mode": "smoke",
  "jobs": 1,
  "workloads": [
    {"name": "w", "events": 50, "window_size": 50,
     "tiers": {"races": 1, "sat": 1, "unsat": 4, "cops_solved": 5,
      "tier_confirmed": 1, "tier_refuted": 4, "tier_residue": 0,
      "solver_solves": 0, "wall_time_us": 3},
     "no_tiers": {"races": 2, "sat": 2, "unsat": 3, "cops_solved": 5,
      "tier_confirmed": 0, "tier_refuted": 0, "tier_residue": 0,
      "solver_solves": 5, "wall_time_us": 9}}
  ]
}"#;
        assert!(validate_tier_bench_json(disagreeing)
            .unwrap_err()
            .contains("must not change the verdict"));
        let agreeing = disagreeing
            .replace("\"races\": 2", "\"races\": 1")
            .replace("\"sat\": 2, \"unsat\": 3", "\"sat\": 1, \"unsat\": 4");
        validate_tier_bench_json(&agreeing).unwrap();
        // The no_tiers run must not report tier activity.
        let leaky = agreeing.replacen("\"tier_confirmed\": 0", "\"tier_confirmed\": 1", 1);
        assert!(validate_tier_bench_json(&leaky)
            .unwrap_err()
            .contains("non-zero tier counters"));
        // The tiers run's counters must partition the COP total.
        let unbalanced = agreeing.replacen("\"tier_refuted\": 4", "\"tier_refuted\": 3", 1);
        assert!(validate_tier_bench_json(&unbalanced)
            .unwrap_err()
            .contains("partition"));
        // Full mode: the screens must decide something...
        let all_residue = agreeing
            .replace("\"mode\": \"smoke\"", "\"mode\": \"full\"")
            .replacen(
                "\"tier_confirmed\": 1, \"tier_refuted\": 4, \"tier_residue\": 0",
                "\"tier_confirmed\": 0, \"tier_refuted\": 0, \"tier_residue\": 5",
                1,
            );
        assert!(validate_tier_bench_json(&all_residue)
            .unwrap_err()
            .contains("decided nothing"));
        // ...the solver-call ratio is enforced...
        let weak_solves = agreeing
            .replace("\"mode\": \"smoke\"", "\"mode\": \"full\"")
            .replacen("\"solver_solves\": 0", "\"solver_solves\": 3", 1);
        assert!(validate_tier_bench_json(&weak_solves)
            .unwrap_err()
            .contains("≥2x"));
        // ...and so is the wall-clock ratio.
        let weak_wall = agreeing
            .replace("\"mode\": \"smoke\"", "\"mode\": \"full\"")
            .replacen("\"wall_time_us\": 3", "\"wall_time_us\": 8", 1);
        assert!(validate_tier_bench_json(&weak_wall)
            .unwrap_err()
            .contains("≥1.3x"));
        // The same weak documents pass in smoke mode: ratios not enforced.
        let smoke = weak_wall.replace("\"mode\": \"full\"", "\"mode\": \"smoke\"");
        validate_tier_bench_json(&smoke).unwrap();
    }
}
