//! Streaming-ingestion benchmark: the `BENCH_pr4.json` harness mode.
//!
//! Compares the whole-file detection pipeline (slurp → parse → windowed
//! solve) against the streaming pipeline ([`RaceDetector::detect_stream`]:
//! windows dispatched to the worker pool while the trace tail is still
//! being read) on the two axes the streaming driver is designed to win:
//!
//! * **time-to-first-race** — the racy COP sits in window 0, so the
//!   streamed run reports it after parsing ~one window instead of the
//!   whole document;
//! * **peak window residency** — the eager driver materializes every
//!   window up front; the streamed driver holds at most the worker pool
//!   plus its bounded queue.
//!
//! ```sh
//! cargo run -p rvbench --release --bin stream_pipeline -- --out BENCH_pr4.json
//! ```
//!
//! # Document schema (version 1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "suite": "pr4",
//!   "mode": "full",
//!   "jobs": 4,
//!   "window_size": 2000,
//!   "workloads": [
//!     {"name": "stream_large", "events": 100005, "windows": 51,
//!      "whole_file": {"races": 1, "ttfr_us": 81230, "wall_time_us": 95810,
//!                     "peak_window_residency": 51},
//!      "streamed":   {"races": 1, "ttfr_us": 2480, "wall_time_us": 88470,
//!                     "peak_window_residency": 9}}
//!   ]
//! }
//! ```
//!
//! `races` is count-type and must be equal between the two pipelines for
//! every workload (the determinism contract: streaming never changes the
//! verdict). The `*_us` and residency fields are run-shape dependent; the
//! validator only enforces the *ordering* invariant — in a `"full"`
//! document, the streamed pipeline must be strictly ahead of the
//! whole-file pipeline on both TTFR and peak residency for the largest
//! workload. (`"smoke"` documents run one small workload where the margins
//! are noise-level, so only equality of `races` is checked.)

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use rvcore::{DetectorConfig, RaceDetector};
use rvsim::workloads::Workload;
use rvtrace::{parse_json, ThreadId, TraceBuilder};

/// Version of the `BENCH_pr4.json` document. Bumped on any incompatible
/// change (key renames, section shape).
pub const STREAM_BENCH_SCHEMA_VERSION: u64 = 1;

/// The suite tag stamped into every document this harness emits.
pub const STREAM_BENCH_SUITE: &str = "pr4";

/// Detection knobs for a streaming-bench run.
#[derive(Debug, Clone, Copy)]
pub struct StreamBenchOptions {
    /// Window size in events (small relative to the traces, so the
    /// streamed run has many windows to overlap).
    pub window_size: usize,
    /// Per-COP solver budget.
    pub solver_timeout: Duration,
    /// Worker threads for both pipelines.
    pub jobs: usize,
}

impl Default for StreamBenchOptions {
    fn default() -> Self {
        StreamBenchOptions {
            window_size: 2_000,
            solver_timeout: Duration::from_secs(5),
            jobs: 4,
        }
    }
}

/// Builds a trace with one racy COP in window 0 followed by `filler`
/// race-free events (two threads on disjoint variables), so detection
/// cost concentrates at the front and ingestion dominates the tail —
/// the regime where pipelining pays.
pub fn racy_stream_workload(name: &str, filler: usize) -> Workload {
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let t2 = b.fork(ThreadId::MAIN);
    b.write(ThreadId::MAIN, x, 1);
    b.write(t2, x, 2);
    let a = b.var("a");
    let c = b.var("c");
    for i in 0..(filler / 2) as i64 {
        b.write(ThreadId::MAIN, a, i);
        b.write(t2, c, i);
    }
    Workload {
        name: name.to_string(),
        trace: b.finish(),
    }
}

/// The smallest streaming workload — a few windows — for smoke runs and
/// the schema test.
pub fn smoke_stream_workloads() -> Vec<Workload> {
    vec![racy_stream_workload("stream_small", 4_000)]
}

/// The full streaming set: three sizes up to ~100K events. The largest is
/// the one the validator holds to the strictly-ahead invariant.
pub fn full_stream_workloads() -> Vec<Workload> {
    vec![
        racy_stream_workload("stream_small", 4_000),
        racy_stream_workload("stream_medium", 20_000),
        racy_stream_workload("stream_large", 100_000),
    ]
}

fn us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

struct PipelineRun {
    races: u64,
    ttfr: Duration,
    wall: Duration,
    peak: u64,
}

fn write_run(out: &mut String, key: &str, run: &PipelineRun) {
    let _ = write!(
        out,
        "\"{key}\": {{\"races\": {}, \"ttfr_us\": {}, \"wall_time_us\": {}, \
         \"peak_window_residency\": {}}}",
        run.races,
        us(run.ttfr),
        us(run.wall),
        run.peak,
    );
}

/// Runs both pipelines over each workload (each from the same serialized
/// bytes) and returns the versioned comparison document described in the
/// module docs. `mode` is stamped into the document and selects how much
/// the validator enforces (`"full"` adds the strictly-ahead invariant).
pub fn run_stream_pipeline(
    workloads: &[Workload],
    opts: &StreamBenchOptions,
    mode: &str,
) -> String {
    let cfg = || DetectorConfig {
        window_size: opts.window_size,
        solver_timeout: opts.solver_timeout,
        parallelism: opts.jobs,
        ..Default::default()
    };
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": {STREAM_BENCH_SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"suite\": \"{STREAM_BENCH_SUITE}\",");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"jobs\": {},", opts.jobs);
    let _ = writeln!(out, "  \"window_size\": {},", opts.window_size);
    out.push_str("  \"workloads\": [");
    for (i, w) in workloads.iter().enumerate() {
        let json = rvtrace::to_json(&w.trace);

        // Whole-file pipeline: parse everything, then detect. TTFR is
        // measured from the first byte, so it carries the full parse.
        let t0 = Instant::now();
        let (trace, ingest) =
            rvtrace::from_json_with_stats(&json).expect("round-trip parse cannot fail");
        let report = RaceDetector::with_config(cfg()).detect(&trace);
        let whole = PipelineRun {
            races: report.n_races() as u64,
            ttfr: ingest.parse_time
                + report
                    .stats
                    .time_to_first_race
                    .unwrap_or(report.stats.wall_time),
            wall: t0.elapsed(),
            peak: report.stats.peak_window_residency as u64,
        };
        let windows = report.stats.windows;

        // Streaming pipeline: same bytes through the incremental parser,
        // windows solved while the tail is still being read.
        let t0 = Instant::now();
        let det = RaceDetector::with_config(cfg())
            .detect_stream(json.as_bytes())
            .expect("round-trip stream parse cannot fail");
        let streamed = PipelineRun {
            races: det.report.n_races() as u64,
            ttfr: det
                .report
                .stats
                .time_to_first_race
                .unwrap_or(det.report.stats.wall_time),
            wall: t0.elapsed(),
            peak: det.report.stats.peak_window_residency as u64,
        };

        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"events\": {}, \"windows\": {},\n     ",
            w.name,
            w.trace.len(),
            windows,
        );
        write_run(&mut out, "whole_file", &whole);
        out.push_str(",\n     ");
        write_run(&mut out, "streamed", &streamed);
        out.push('}');
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Integer fields each pipeline sub-object must carry, all non-negative.
const RUN_INT_KEYS: [&str; 4] = ["races", "ttfr_us", "wall_time_us", "peak_window_residency"];

/// Validates a `BENCH_pr4.json` document: version/suite/mode tags,
/// required keys, non-negative integers, `races` equality between the two
/// pipelines on every workload, and — for `"full"` documents — the
/// streamed pipeline strictly ahead on TTFR and peak window residency for
/// the largest workload. Returns a description of the first violation.
pub fn validate_stream_bench_json(json: &str) -> Result<(), String> {
    let doc = parse_json(json).map_err(|e| format!("not valid JSON: {e}"))?;
    let version = doc
        .field("schema_version")
        .and_then(|v| v.as_int())
        .map_err(|e| e.to_string())?;
    if version != STREAM_BENCH_SCHEMA_VERSION as i64 {
        return Err(format!(
            "schema_version is {version}, expected {STREAM_BENCH_SCHEMA_VERSION}"
        ));
    }
    let suite = doc
        .field("suite")
        .and_then(|v| v.as_str().map(str::to_string))
        .map_err(|e| e.to_string())?;
    if suite != STREAM_BENCH_SUITE {
        return Err(format!(
            "suite is `{suite}`, expected `{STREAM_BENCH_SUITE}`"
        ));
    }
    let mode = doc
        .field("mode")
        .and_then(|v| v.as_str().map(str::to_string))
        .map_err(|e| e.to_string())?;
    if mode != "smoke" && mode != "full" {
        return Err(format!("mode is `{mode}`, expected `smoke` or `full`"));
    }
    for key in ["jobs", "window_size"] {
        let v = doc
            .field(key)
            .and_then(|v| v.as_int())
            .map_err(|e| format!("{key}: {e}"))?;
        if v <= 0 {
            return Err(format!("{key} must be positive, got {v}"));
        }
    }
    let entries = doc
        .field("workloads")
        .and_then(|v| v.as_array().map(<[_]>::to_vec))
        .map_err(|e| format!("workloads: {e}"))?;
    if entries.is_empty() {
        return Err("workloads array is empty".into());
    }
    let mut largest: Option<(i64, String, i64, i64, i64, i64)> = None;
    for (i, entry) in entries.iter().enumerate() {
        let name = entry
            .field("name")
            .and_then(|v| v.as_str().map(str::to_string))
            .map_err(|e| format!("workloads[{i}].name: {e}"))?;
        let top = |key: &str| -> Result<i64, String> {
            let v = entry
                .field(key)
                .and_then(|v| v.as_int())
                .map_err(|e| format!("workload `{name}`: {key}: {e}"))?;
            if v < 0 {
                return Err(format!("workload `{name}`: {key} is negative ({v})"));
            }
            Ok(v)
        };
        let events = top("events")?;
        top("windows")?;
        let mut runs = [0i64; 8];
        for (r, run_key) in ["whole_file", "streamed"].into_iter().enumerate() {
            let run = entry
                .field(run_key)
                .map_err(|e| format!("workload `{name}`: {run_key}: {e}"))?;
            for (k, key) in RUN_INT_KEYS.into_iter().enumerate() {
                let v = run
                    .field(key)
                    .and_then(|v| v.as_int())
                    .map_err(|e| format!("workload `{name}`: {run_key}.{key}: {e}"))?;
                if v < 0 {
                    return Err(format!(
                        "workload `{name}`: {run_key}.{key} is negative ({v})"
                    ));
                }
                runs[r * 4 + k] = v;
            }
        }
        let [w_races, w_ttfr, _, w_peak, s_races, s_ttfr, _, s_peak] = runs;
        if w_races != s_races {
            return Err(format!(
                "workload `{name}`: whole_file found {w_races} race(s) but streamed \
                 found {s_races} — streaming must not change the verdict"
            ));
        }
        if largest.as_ref().is_none_or(|(e, ..)| events > *e) {
            largest = Some((events, name, w_ttfr, s_ttfr, w_peak, s_peak));
        }
    }
    if mode == "full" {
        let (_, name, w_ttfr, s_ttfr, w_peak, s_peak) =
            largest.expect("workloads array checked non-empty");
        if s_ttfr >= w_ttfr {
            return Err(format!(
                "workload `{name}`: streamed ttfr_us ({s_ttfr}) is not strictly ahead \
                 of whole_file ({w_ttfr})"
            ));
        }
        if s_peak >= w_peak {
            return Err(format!(
                "workload `{name}`: streamed peak_window_residency ({s_peak}) is not \
                 strictly ahead of whole_file ({w_peak})"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_stream_pipeline_emits_valid_document() {
        let json = run_stream_pipeline(
            &smoke_stream_workloads(),
            &StreamBenchOptions::default(),
            "smoke",
        );
        validate_stream_bench_json(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        assert!(json.contains("\"suite\": \"pr4\""), "{json}");
        assert!(json.contains("\"name\": \"stream_small\""), "{json}");
    }

    #[test]
    fn validator_rejects_tampered_documents() {
        let json = run_stream_pipeline(
            &smoke_stream_workloads(),
            &StreamBenchOptions::default(),
            "smoke",
        );
        let wrong_version = json.replace("\"schema_version\": 1", "\"schema_version\": 99");
        assert!(validate_stream_bench_json(&wrong_version)
            .unwrap_err()
            .contains("schema_version"));
        let wrong_suite = json.replace("\"suite\": \"pr4\"", "\"suite\": \"pr3\"");
        assert!(validate_stream_bench_json(&wrong_suite)
            .unwrap_err()
            .contains("suite"));
        assert!(validate_stream_bench_json("not json").is_err());
        assert!(validate_stream_bench_json("{}").is_err());
    }

    #[test]
    fn validator_enforces_verdict_equality_and_full_mode_ordering() {
        // Hand-built document: races disagree between the pipelines.
        let disagreeing = r#"{
  "schema_version": 1, "suite": "pr4", "mode": "smoke",
  "jobs": 1, "window_size": 10,
  "workloads": [
    {"name": "w", "events": 10, "windows": 1,
     "whole_file": {"races": 1, "ttfr_us": 5, "wall_time_us": 9, "peak_window_residency": 1},
     "streamed": {"races": 2, "ttfr_us": 5, "wall_time_us": 9, "peak_window_residency": 1}}
  ]
}"#;
        assert!(validate_stream_bench_json(disagreeing)
            .unwrap_err()
            .contains("verdict"));
        // Full mode: streamed not ahead on TTFR for the largest workload.
        let not_ahead = r#"{
  "schema_version": 1, "suite": "pr4", "mode": "full",
  "jobs": 1, "window_size": 10,
  "workloads": [
    {"name": "w", "events": 10, "windows": 1,
     "whole_file": {"races": 1, "ttfr_us": 5, "wall_time_us": 9, "peak_window_residency": 4},
     "streamed": {"races": 1, "ttfr_us": 8, "wall_time_us": 9, "peak_window_residency": 1}}
  ]
}"#;
        assert!(validate_stream_bench_json(not_ahead)
            .unwrap_err()
            .contains("ttfr"));
        // Same document in smoke mode passes: ordering is not enforced.
        let smoke = not_ahead.replace("\"mode\": \"full\"", "\"mode\": \"smoke\"");
        validate_stream_bench_json(&smoke).unwrap();
    }
}
