//! The `BENCH_pr8.json` generator: fixed vs cone window mode over
//! boundary-handoff workloads.
//!
//! ```sh
//! cargo run -p rvbench --release --bin boundary_pipeline -- [--out BENCH_pr8.json]
//!     [--smoke] [--budget SECS] [--jobs N] [--spill-budget BYTES]
//! ```
//!
//! By default runs the full set including the paper-scale handoff (a
//! racing pair astride every 10K boundary); `--smoke` restricts the run
//! to the small workloads (sub-second, for CI smoke checks). The emitted
//! document conforms to [`rvbench::boundary`]'s schema and is validated
//! before it is written.

use std::process::ExitCode;
use std::time::Duration;

use rvbench::boundary::{
    full_boundary_workloads, run_boundary_pipeline, smoke_boundary_workloads,
    validate_boundary_bench_json, BoundaryBenchOptions,
};

fn main() -> ExitCode {
    let mut out = "BENCH_pr8.json".to_string();
    let mut smoke = false;
    let mut opts = BoundaryBenchOptions::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Option<&String> { args.get(i + 1) };
        match args[i].as_str() {
            "--out" => {
                let Some(v) = value(i) else {
                    eprintln!("error: --out needs a path");
                    return ExitCode::from(2);
                };
                out = v.clone();
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--budget" => {
                match value(i).and_then(|v| v.parse::<u64>().ok()) {
                    Some(v) => opts.solver_timeout = Duration::from_secs(v),
                    None => {
                        eprintln!("error: --budget needs an integer (seconds)");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            "--jobs" => {
                match value(i).and_then(|v| v.parse().ok()) {
                    Some(v) if v > 0 => opts.jobs = v,
                    _ => {
                        eprintln!("error: --jobs needs a positive integer");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            "--spill-budget" => {
                match value(i).and_then(|v| v.parse().ok()) {
                    Some(v) => opts.spill_budget = v,
                    None => {
                        eprintln!("error: --spill-budget needs a byte count");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            other => {
                eprintln!(
                    "usage: boundary_pipeline [--out PATH] [--smoke] [--budget SECS] \
                     [--jobs N] [--spill-budget BYTES]"
                );
                if other != "--help" && other != "-h" {
                    eprintln!("error: unknown option {other}");
                }
                return ExitCode::from(2);
            }
        }
    }

    let (workloads, mode) = if smoke {
        (smoke_boundary_workloads(), "smoke")
    } else {
        (full_boundary_workloads(), "full")
    };
    eprintln!(
        "boundary_pipeline: {} workload(s), jobs={}, spill_budget={}, mode={}",
        workloads.len(),
        opts.jobs,
        opts.spill_budget,
        mode
    );
    let json = run_boundary_pipeline(&workloads, &opts, mode);
    if let Err(e) = validate_boundary_bench_json(&json) {
        eprintln!("error: generated document violates its own schema: {e}");
        return ExitCode::from(1);
    }
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::from(1);
    }
    eprintln!("boundary_pipeline: wrote {out}");
    ExitCode::SUCCESS
}
