//! The `BENCH_pr6.json` generator: the tiered cascade on vs off over
//! flag-handoff workloads.
//!
//! ```sh
//! cargo run -p rvbench --release --bin tier_pipeline -- [--out BENCH_pr6.json]
//!     [--smoke] [--budget SECS] [--jobs N]
//! ```
//!
//! By default runs the full three-size set; `--smoke` restricts the run
//! to the smallest workload (sub-second, for CI smoke checks) and relaxes
//! the validator's reduction/speedup ratios, which are noise-level at that
//! size. The emitted document conforms to [`rvbench::tier`]'s schema and
//! is validated before it is written.

use std::process::ExitCode;
use std::time::Duration;

use rvbench::tier::{
    full_tier_workloads, run_tier_pipeline, smoke_tier_workloads, validate_tier_bench_json,
    TierBenchOptions,
};

fn main() -> ExitCode {
    let mut out = "BENCH_pr6.json".to_string();
    let mut smoke = false;
    let mut opts = TierBenchOptions::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Option<&String> { args.get(i + 1) };
        match args[i].as_str() {
            "--out" => {
                let Some(v) = value(i) else {
                    eprintln!("error: --out needs a path");
                    return ExitCode::from(2);
                };
                out = v.clone();
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--budget" => {
                match value(i).and_then(|v| v.parse::<u64>().ok()) {
                    Some(v) => opts.solver_timeout = Duration::from_secs(v),
                    None => {
                        eprintln!("error: --budget needs an integer (seconds)");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            "--jobs" => {
                match value(i).and_then(|v| v.parse().ok()) {
                    Some(v) if v > 0 => opts.jobs = v,
                    _ => {
                        eprintln!("error: --jobs needs a positive integer");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            other => {
                eprintln!("usage: tier_pipeline [--out PATH] [--smoke] [--budget SECS] [--jobs N]");
                if other != "--help" && other != "-h" {
                    eprintln!("error: unknown option {other}");
                }
                return ExitCode::from(2);
            }
        }
    }

    let (workloads, mode) = if smoke {
        (smoke_tier_workloads(), "smoke")
    } else {
        (full_tier_workloads(), "full")
    };
    eprintln!(
        "tier_pipeline: {} workload(s), jobs={}, mode={}",
        workloads.len(),
        opts.jobs,
        mode
    );
    let json = run_tier_pipeline(&workloads, &opts, mode);
    if let Err(e) = validate_tier_bench_json(&json) {
        eprintln!("error: generated document violates its own schema: {e}");
        return ExitCode::from(1);
    }
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::from(1);
    }
    eprintln!("tier_pipeline: wrote {out}");
    ExitCode::SUCCESS
}
