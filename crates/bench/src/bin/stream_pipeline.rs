//! The `BENCH_pr4.json` generator: whole-file vs streaming-ingestion
//! comparison over synthetic racy-head workloads.
//!
//! ```sh
//! cargo run -p rvbench --release --bin stream_pipeline -- [--out BENCH_pr4.json]
//!     [--smoke] [--window N] [--budget SECS] [--jobs N]
//! ```
//!
//! By default runs the full three-size set (largest ~100K events);
//! `--smoke` restricts the run to the smallest workload (sub-second, for
//! CI smoke checks) and relaxes the validator's strictly-ahead invariant,
//! which is noise-level at that size. The emitted document conforms to
//! [`rvbench::stream`]'s schema and is validated before it is written.

use std::process::ExitCode;
use std::time::Duration;

use rvbench::stream::{
    full_stream_workloads, run_stream_pipeline, smoke_stream_workloads, validate_stream_bench_json,
    StreamBenchOptions,
};

fn main() -> ExitCode {
    let mut out = "BENCH_pr4.json".to_string();
    let mut smoke = false;
    let mut opts = StreamBenchOptions::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Option<&String> { args.get(i + 1) };
        match args[i].as_str() {
            "--out" => {
                let Some(v) = value(i) else {
                    eprintln!("error: --out needs a path");
                    return ExitCode::from(2);
                };
                out = v.clone();
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--window" => {
                match value(i).and_then(|v| v.parse().ok()) {
                    Some(v) if v > 0 => opts.window_size = v,
                    _ => {
                        eprintln!("error: --window needs a positive integer");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            "--budget" => {
                match value(i).and_then(|v| v.parse::<u64>().ok()) {
                    Some(v) => opts.solver_timeout = Duration::from_secs(v),
                    None => {
                        eprintln!("error: --budget needs an integer (seconds)");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            "--jobs" => {
                match value(i).and_then(|v| v.parse().ok()) {
                    Some(v) if v > 0 => opts.jobs = v,
                    _ => {
                        eprintln!("error: --jobs needs a positive integer");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            other => {
                eprintln!(
                    "usage: stream_pipeline [--out PATH] [--smoke] [--window N] \
                     [--budget SECS] [--jobs N]"
                );
                if other != "--help" && other != "-h" {
                    eprintln!("error: unknown option {other}");
                }
                return ExitCode::from(2);
            }
        }
    }

    let (workloads, mode) = if smoke {
        (smoke_stream_workloads(), "smoke")
    } else {
        (full_stream_workloads(), "full")
    };
    eprintln!(
        "stream_pipeline: {} workload(s), window={}, jobs={}, mode={}",
        workloads.len(),
        opts.window_size,
        opts.jobs,
        mode
    );
    let json = run_stream_pipeline(&workloads, &opts, mode);
    if let Err(e) = validate_stream_bench_json(&json) {
        eprintln!("error: generated document violates its own schema: {e}");
        return ExitCode::from(1);
    }
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::from(1);
    }
    eprintln!("stream_pipeline: wrote {out}");
    ExitCode::SUCCESS
}
