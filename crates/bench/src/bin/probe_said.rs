use rvcore::{DetectorConfig, RaceDetector};
use rvsim::workloads;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let budget: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let window: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(10_000);
    let p = workloads::systems::profiles()
        .into_iter()
        .find(|p| p.name == "eclipse")
        .unwrap();
    let w = workloads::systems::generate(&p);
    let cfg = DetectorConfig {
        solver_timeout: Duration::from_secs(budget),
        window_size: window,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let rep = RaceDetector::with_config(cfg).detect(&w.trace);
    println!("budget={budget}s window={window}: {rep}");
    println!("elapsed {:.1?}", t0.elapsed());
}
