//! Regenerates the paper's Table 1: for every benchmark, the trace metrics
//! (#Thrd, #Event, #RW, #Sync, #Br), the quick-check column (QC), the race
//! counts of the four techniques (RV, Said, CP, HB), and their detection
//! times.
//!
//! ```sh
//! cargo run -p rvbench --release --bin table1 -- [OPTIONS]
//!
//! OPTIONS:
//!   --rows small|systems|all   which benchmark classes to run (default all)
//!   --scale F                  iteration multiplier for system rows (default 1.0)
//!   --budget SECS              per-COP solver budget (default 5; paper used 60)
//!   --window N                 window size in events (default 10000, as in §5)
//! ```
//!
//! Absolute numbers differ from the paper's (our traces come from the
//! mini-language simulator, not instrumented Java); the *shape* is the
//! reproduction target: RV ⊇ Said/CP/HB per row, CP ⊇ HB, RV's margin on
//! control-flow-sensitive rows, and HB/CP ≪ RV < Said in runtime.

use std::time::Duration;

use rvbench::{run_row, table_header, HarnessConfig};
use rvsim::workloads;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut rows = "all".to_string();
    let mut scale = 1.0f64;
    let mut cfg = HarnessConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--rows" => {
                rows = args[i + 1].clone();
                i += 2;
            }
            "--scale" => {
                scale = args[i + 1].parse().expect("--scale takes a float");
                i += 2;
            }
            "--budget" => {
                let secs: u64 = args[i + 1].parse().expect("--budget takes seconds");
                cfg.solver_timeout = Duration::from_secs(secs);
                i += 2;
            }
            "--window" => {
                cfg.window_size = args[i + 1].parse().expect("--window takes a size");
                i += 2;
            }
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
    }

    let mut suite = Vec::new();
    if rows == "small" || rows == "all" {
        suite.extend(workloads::small_suite());
    }
    if rows == "systems" || rows == "all" {
        for p in workloads::systems::profiles() {
            suite.push(workloads::systems::generate(&p.scaled(scale)));
        }
    }

    println!(
        "Table 1 (window={}, per-COP budget={:?}, scale={scale})",
        cfg.window_size, cfg.solver_timeout
    );
    println!("{}", table_header());
    let mut totals = [0usize; 4];
    let mut violations = 0usize;
    for w in &suite {
        let row = run_row(w, &cfg);
        if row.inclusion_violations > 0 {
            println!(
                "{}   <- {} inclusion violations",
                row.format(),
                row.inclusion_violations
            );
        } else {
            println!("{}", row.format());
        }
        for (total, n) in totals.iter_mut().zip(row.races) {
            *total += n;
        }
        violations += row.inclusion_violations;
    }
    println!(
        "{:<14} {:>56} | {:>4} {:>4} {:>4} {:>4} |",
        "TOTAL", "", totals[0], totals[1], totals[2], totals[3]
    );
    if violations == 0 {
        println!("soundness-inclusion check: OK (RV ⊇ Said, RV ⊇ CP ⊇ HB on every row)");
    } else {
        println!("soundness-inclusion check: {violations} VIOLATIONS");
        std::process::exit(1);
    }
}
