//! The `BENCH_pr10.json` generator: the hot-path overhaul (arena trace
//! storage, batched/incremental window sessions, tiers, slicing) vs the
//! PR4-era baseline pipeline, plus the portfolio byte-identity matrix.
//!
//! ```sh
//! cargo run -p rvbench --release --bin perf_pipeline -- [--out BENCH_pr10.json]
//!     [--smoke] [--budget SECS] [--jobs N]
//! ```
//!
//! By default runs the full three-workload set (two at ~100K events;
//! the baseline leg of the handoff workload alone takes ~30s); `--smoke`
//! restricts the run to two small workloads (a few seconds, for CI smoke
//! checks) and relaxes the validator's speedup floor, which is
//! noise-level at that size. The emitted document conforms to
//! [`rvbench::perf`]'s schema and is validated before it is written.

use std::process::ExitCode;
use std::time::Duration;

use rvbench::perf::{
    full_perf_workloads, run_perf_pipeline, smoke_perf_workloads, validate_perf_bench_json,
    PerfBenchOptions,
};

fn main() -> ExitCode {
    let mut out = "BENCH_pr10.json".to_string();
    let mut smoke = false;
    let mut opts = PerfBenchOptions::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Option<&String> { args.get(i + 1) };
        match args[i].as_str() {
            "--out" => {
                let Some(v) = value(i) else {
                    eprintln!("error: --out needs a path");
                    return ExitCode::from(2);
                };
                out = v.clone();
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--budget" => {
                match value(i).and_then(|v| v.parse::<u64>().ok()) {
                    Some(v) => opts.solver_timeout = Duration::from_secs(v),
                    None => {
                        eprintln!("error: --budget needs an integer (seconds)");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            "--jobs" => {
                match value(i).and_then(|v| v.parse().ok()) {
                    Some(v) if v > 0 => opts.jobs = v,
                    _ => {
                        eprintln!("error: --jobs needs a positive integer");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            other => {
                eprintln!("usage: perf_pipeline [--out PATH] [--smoke] [--budget SECS] [--jobs N]");
                if other != "--help" && other != "-h" {
                    eprintln!("error: unknown option {other}");
                }
                return ExitCode::from(2);
            }
        }
    }

    let (workloads, mode) = if smoke {
        (smoke_perf_workloads(), "smoke")
    } else {
        (full_perf_workloads(), "full")
    };
    eprintln!(
        "perf_pipeline: {} workload(s), jobs={}, mode={}",
        workloads.len(),
        opts.jobs,
        mode
    );
    let json = run_perf_pipeline(&workloads, &opts, mode);
    if let Err(e) = validate_perf_bench_json(&json) {
        eprintln!("error: generated document violates its own schema: {e}");
        return ExitCode::from(1);
    }
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::from(1);
    }
    eprintln!("perf_pipeline: wrote {out}");
    ExitCode::SUCCESS
}
