//! Serializes a named workload trace to JSON or NDJSON, for feeding
//! `rvpredict` (in particular its `--stream` mode and CI's stream-smoke
//! step) without hand-writing trace files.
//!
//! ```sh
//! cargo run -p rvbench --release --bin emit_trace -- \
//!     --workload figure1 [--format json|ndjson] [--out PATH]
//! ```
//!
//! `--out -` (the default) writes to stdout, so the output can be piped
//! straight into `rvpredict --stream -`.

use std::process::ExitCode;

use rvbench::boundary::{boundary_control_workload, boundary_handoff_workload};
use rvbench::kind::{
    atomicity_workload, channel_workload, deadlock_workload, gated_deadlock_workload,
    rwlock_racy_workload, rwlock_workload,
};
use rvbench::perf::double_flag_workload;
use rvbench::serve::tenant_mix_workload;
use rvbench::slice::wide_window_workload;
use rvbench::stream::racy_stream_workload;
use rvbench::tier::flag_handoff_workload;
use rvsim::workloads::{self, Workload};

fn named_workload(name: &str) -> Option<Workload> {
    Some(match name {
        "figure1" => workloads::figures::figure1(),
        "figure2_read" => workloads::figures::figure2_read(),
        "array_index" => workloads::figures::array_index(),
        "stream_small" => racy_stream_workload("stream_small", 4_000),
        "stream_medium" => racy_stream_workload("stream_medium", 20_000),
        "stream_large" => racy_stream_workload("stream_large", 100_000),
        "wide_small" => wide_window_workload("wide_small", 4, 4),
        "wide_medium" => wide_window_workload("wide_medium", 6, 8),
        "wide_large" => wide_window_workload("wide_large", 10, 14),
        "tier_small" => flag_handoff_workload("tier_small", 2, 4),
        "tier_medium" => flag_handoff_workload("tier_medium", 8, 60),
        "residue_small" => double_flag_workload("residue_small", 4, 12),
        "residue_large" => double_flag_workload("residue_large", 8, 40),
        "tenant_mix" => tenant_mix_workload("tenant_mix", 60),
        "boundary_handoff" => boundary_handoff_workload("boundary_handoff", 1_000, 4),
        "boundary_control" => boundary_control_workload("boundary_control", 1_000, 4),
        "deadlock_micro" => deadlock_workload("deadlock_micro", 1),
        "deadlock_gated" => gated_deadlock_workload("deadlock_gated"),
        "atomicity_micro" => atomicity_workload("atomicity_micro", 1),
        "rwlock_guarded" => rwlock_workload("rwlock_guarded", 2),
        "rwlock_shared_readers" => rwlock_racy_workload("rwlock_shared_readers"),
        "channel_pipeline" => channel_workload("channel_pipeline", 2),
        _ => return None,
    })
}

const WORKLOAD_NAMES: [&str; 20] = [
    "figure1",
    "figure2_read",
    "array_index",
    "stream_small",
    "stream_medium",
    "stream_large",
    "wide_small",
    "wide_medium",
    "wide_large",
    "tier_small",
    "tier_medium",
    "tenant_mix",
    "boundary_handoff",
    "boundary_control",
    "deadlock_micro",
    "deadlock_gated",
    "atomicity_micro",
    "rwlock_guarded",
    "rwlock_shared_readers",
    "channel_pipeline",
];

fn main() -> ExitCode {
    let mut workload: Option<String> = None;
    let mut format = "json".to_string();
    let mut out = "-".to_string();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Option<&String> { args.get(i + 1) };
        match args[i].as_str() {
            "--workload" => {
                let Some(v) = value(i) else {
                    eprintln!("error: --workload needs a name");
                    return ExitCode::from(2);
                };
                workload = Some(v.clone());
                i += 2;
            }
            "--format" => {
                match value(i).map(String::as_str) {
                    Some(v @ ("json" | "ndjson")) => format = v.to_string(),
                    _ => {
                        eprintln!("error: --format must be json or ndjson");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            "--out" => {
                let Some(v) = value(i) else {
                    eprintln!("error: --out needs a path (or - for stdout)");
                    return ExitCode::from(2);
                };
                out = v.clone();
                i += 2;
            }
            other => {
                eprintln!("usage: emit_trace --workload NAME [--format json|ndjson] [--out PATH]");
                eprintln!("workloads: {}", WORKLOAD_NAMES.join(", "));
                if other != "--help" && other != "-h" {
                    eprintln!("error: unknown option {other}");
                }
                return ExitCode::from(2);
            }
        }
    }

    let Some(name) = workload else {
        eprintln!(
            "error: --workload is required; one of: {}",
            WORKLOAD_NAMES.join(", ")
        );
        return ExitCode::from(2);
    };
    let Some(w) = named_workload(&name) else {
        eprintln!(
            "error: unknown workload `{name}`; one of: {}",
            WORKLOAD_NAMES.join(", ")
        );
        return ExitCode::from(2);
    };
    let serialized = match format.as_str() {
        "ndjson" => rvtrace::to_ndjson(&w.trace),
        _ => rvtrace::to_json(&w.trace),
    };
    if out == "-" {
        print!("{serialized}");
        return ExitCode::SUCCESS;
    }
    if let Err(e) = std::fs::write(&out, &serialized) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::from(1);
    }
    eprintln!(
        "emit_trace: wrote {} ({} events, {})",
        out,
        w.trace.len(),
        format
    );
    ExitCode::SUCCESS
}
