//! The `BENCH_pr3.json` generator: end-to-end pipeline benchmark over the
//! sim workloads.
//!
//! ```sh
//! cargo run -p rvbench --release --bin pipeline -- [--out BENCH_pr3.json]
//!     [--smoke] [--window N] [--budget SECS] [--jobs N]
//! ```
//!
//! By default runs the full small suite; `--smoke` restricts the run to
//! the paper's Figure 1 (sub-second, for CI smoke checks). The emitted
//! document conforms to [`rvbench::pipeline`]'s schema and is validated
//! before it is written, so a harness regression fails here rather than in
//! a downstream consumer.

use std::process::ExitCode;
use std::time::Duration;

use rvbench::pipeline::{
    full_workloads, run_pipeline, smoke_workloads, validate_bench_json, PipelineOptions,
};

fn main() -> ExitCode {
    let mut out = "BENCH_pr3.json".to_string();
    let mut smoke = false;
    let mut opts = PipelineOptions::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Option<&String> { args.get(i + 1) };
        match args[i].as_str() {
            "--out" => {
                let Some(v) = value(i) else {
                    eprintln!("error: --out needs a path");
                    return ExitCode::from(2);
                };
                out = v.clone();
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--window" => {
                match value(i).and_then(|v| v.parse().ok()) {
                    Some(v) if v > 0 => opts.window_size = v,
                    _ => {
                        eprintln!("error: --window needs a positive integer");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            "--budget" => {
                match value(i).and_then(|v| v.parse::<u64>().ok()) {
                    Some(v) => opts.solver_timeout = Duration::from_secs(v),
                    None => {
                        eprintln!("error: --budget needs an integer (seconds)");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            "--jobs" => {
                match value(i).and_then(|v| v.parse().ok()) {
                    Some(v) if v > 0 => opts.jobs = v,
                    _ => {
                        eprintln!("error: --jobs needs a positive integer");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            other => {
                eprintln!(
                    "usage: pipeline [--out PATH] [--smoke] [--window N] [--budget SECS] [--jobs N]"
                );
                if other != "--help" && other != "-h" {
                    eprintln!("error: unknown option {other}");
                }
                return ExitCode::from(2);
            }
        }
    }

    let workloads = if smoke {
        smoke_workloads()
    } else {
        full_workloads()
    };
    eprintln!(
        "pipeline: {} workload(s), window={}, jobs={}",
        workloads.len(),
        opts.window_size,
        opts.jobs
    );
    let json = run_pipeline(&workloads, &opts);
    if let Err(e) = validate_bench_json(&json) {
        eprintln!("error: generated document violates its own schema: {e}");
        return ExitCode::from(1);
    }
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::from(1);
    }
    eprintln!("pipeline: wrote {out}");
    ExitCode::SUCCESS
}
