//! The `BENCH_pr9.json` generator: the multi-class violation benchmark
//! behind the `--kind` axis (race / deadlock / atomicity).
//!
//! ```sh
//! cargo run -p rvbench --release --bin kind_pipeline -- [--out BENCH_pr9.json]
//!     [--smoke] [--budget SECS] [--jobs N]
//! ```
//!
//! By default runs the full set including the multi-cycle and
//! multi-counter workloads; `--smoke` restricts the run to the micro
//! workloads (sub-second, for CI smoke checks). The emitted document
//! conforms to [`rvbench::kind`]'s schema and is validated before it is
//! written.

use std::process::ExitCode;
use std::time::Duration;

use rvbench::kind::{
    full_kind_workloads, run_kind_pipeline, smoke_kind_workloads, validate_kind_bench_json,
    KindBenchOptions,
};

fn main() -> ExitCode {
    let mut out = "BENCH_pr9.json".to_string();
    let mut smoke = false;
    let mut opts = KindBenchOptions::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Option<&String> { args.get(i + 1) };
        match args[i].as_str() {
            "--out" => {
                let Some(v) = value(i) else {
                    eprintln!("error: --out needs a path");
                    return ExitCode::from(2);
                };
                out = v.clone();
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--budget" => {
                match value(i).and_then(|v| v.parse::<u64>().ok()) {
                    Some(v) => opts.solver_timeout = Duration::from_secs(v),
                    None => {
                        eprintln!("error: --budget needs an integer (seconds)");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            "--jobs" => {
                match value(i).and_then(|v| v.parse().ok()) {
                    Some(v) if v > 0 => opts.jobs = v,
                    _ => {
                        eprintln!("error: --jobs needs a positive integer");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            other => {
                eprintln!("usage: kind_pipeline [--out PATH] [--smoke] [--budget SECS] [--jobs N]");
                if other != "--help" && other != "-h" {
                    eprintln!("error: unknown option {other}");
                }
                return ExitCode::from(2);
            }
        }
    }

    let (workloads, mode) = if smoke {
        (smoke_kind_workloads(), "smoke")
    } else {
        (full_kind_workloads(), "full")
    };
    eprintln!(
        "kind_pipeline: {} workload(s), jobs={}, mode={}",
        workloads.len(),
        opts.jobs,
        mode
    );
    let json = run_kind_pipeline(&workloads, &opts, mode);
    if let Err(e) = validate_kind_bench_json(&json) {
        eprintln!("error: generated document violates its own schema: {e}");
        return ExitCode::from(1);
    }
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::from(1);
    }
    eprintln!("kind_pipeline: wrote {out}");
    ExitCode::SUCCESS
}
