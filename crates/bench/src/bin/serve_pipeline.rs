//! The `BENCH_pr7.json` generator: concurrent tenants on a shared session
//! manager vs their solo runs.
//!
//! ```sh
//! cargo run -p rvbench --release --bin serve_pipeline -- [--out BENCH_pr7.json]
//!     [--smoke] [--budget SECS] [--jobs N]
//! ```
//!
//! By default runs the full six-tenant set over a two-worker pool (so the
//! pool is genuinely multiplexed); `--smoke` restricts the run to three
//! small tenants for CI smoke checks. The emitted document conforms to
//! [`rvbench::serve`]'s schema and is validated before it is written.

use std::process::ExitCode;
use std::time::Duration;

use rvbench::serve::{
    full_serve_workloads, run_serve_pipeline, smoke_serve_workloads, validate_serve_bench_json,
    ServeBenchOptions,
};

fn main() -> ExitCode {
    let mut out = "BENCH_pr7.json".to_string();
    let mut smoke = false;
    let mut opts = ServeBenchOptions::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Option<&String> { args.get(i + 1) };
        match args[i].as_str() {
            "--out" => {
                let Some(v) = value(i) else {
                    eprintln!("error: --out needs a path");
                    return ExitCode::from(2);
                };
                out = v.clone();
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--budget" => {
                match value(i).and_then(|v| v.parse::<u64>().ok()) {
                    Some(v) => opts.solver_timeout = Duration::from_secs(v),
                    None => {
                        eprintln!("error: --budget needs an integer (seconds)");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            "--jobs" => {
                match value(i).and_then(|v| v.parse().ok()) {
                    Some(v) if v > 0 => opts.workers = v,
                    _ => {
                        eprintln!("error: --jobs needs a positive integer");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            other => {
                eprintln!(
                    "usage: serve_pipeline [--out PATH] [--smoke] [--budget SECS] [--jobs N]"
                );
                if other != "--help" && other != "-h" {
                    eprintln!("error: unknown option {other}");
                }
                return ExitCode::from(2);
            }
        }
    }

    let (workloads, mode) = if smoke {
        (smoke_serve_workloads(), "smoke")
    } else {
        (full_serve_workloads(), "full")
    };
    eprintln!(
        "serve_pipeline: {} tenant(s), workers={}, mode={}",
        workloads.len(),
        opts.workers,
        mode
    );
    let json = run_serve_pipeline(&workloads, &opts, mode);
    if let Err(e) = validate_serve_bench_json(&json) {
        eprintln!("error: generated document violates its own schema: {e}");
        return ExitCode::from(1);
    }
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::from(1);
    }
    eprintln!("serve_pipeline: wrote {out}");
    ExitCode::SUCCESS
}
