//! End-to-end pipeline benchmark: the `BENCH_pr3.json` harness mode.
//!
//! Runs the maximal detector over sim workloads — trace in, merged report
//! out — and serializes one machine-readable result document in a stable,
//! versioned schema, seeding the repo's perf trajectory (`BENCH_*.json`).
//! The schema is integer-only (timings in microseconds) so the in-tree
//! parser ([`rvtrace::parse_json`]) can read it back, and
//! [`validate_bench_json`] enforces it so the harness cannot silently
//! drift.
//!
//! ```sh
//! cargo run -p rvbench --release --bin pipeline -- --out BENCH_pr3.json
//! ```
//!
//! # Document schema (version 1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "suite": "pr3",
//!   "jobs": 1,
//!   "window_size": 10000,
//!   "workloads": [
//!     {"name": "example", "events": 17, "races": 1, "windows": 1,
//!      "cops_solved": 1, "sat": 1, "unsat": 0, "undecided": 0,
//!      "solver_decisions": 2, "solver_conflicts": 1,
//!      "solver_propagations": 25,
//!      "wall_time_us": 642, "solver_time_us": 371}
//!   ],
//!   "totals": {"workloads": 1, "events": 17, "races": 1,
//!              "cops_solved": 1, "wall_time_us": 642}
//! }
//! ```
//!
//! Per workload, `cops_solved == sat + unsat + undecided` must hold; the
//! `totals` object must sum the per-workload values. Counters and solver
//! effort are deterministic for a given build (see the determinism
//! contract in `rvcore::metrics`); the `*_time_us` fields are wall-clock
//! and vary run to run.

use std::fmt::Write as _;
use std::time::Duration;

use rvcore::{DetectorConfig, RaceDetector};
use rvsim::workloads::{self, Workload};
use rvtrace::parse_json;

/// Version of the `BENCH_pr3.json` document. Bumped on any incompatible
/// change (key renames, section shape).
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// The suite tag stamped into every document this harness emits.
pub const BENCH_SUITE: &str = "pr3";

/// Detection knobs for a pipeline run.
#[derive(Debug, Clone, Copy)]
pub struct PipelineOptions {
    /// Window size in events.
    pub window_size: usize,
    /// Per-COP solver budget.
    pub solver_timeout: Duration,
    /// Worker threads for the parallel driver.
    pub jobs: usize,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            window_size: 10_000,
            solver_timeout: Duration::from_secs(5),
            jobs: 1,
        }
    }
}

/// The smallest workload set — just the paper's Figure 1 — for smoke runs
/// and the schema test.
pub fn smoke_workloads() -> Vec<Workload> {
    vec![workloads::figures::figure1()]
}

/// The full pipeline set: every small-suite sim workload.
pub fn full_workloads() -> Vec<Workload> {
    workloads::small_suite()
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Runs detection end-to-end over each workload and returns the versioned
/// result document described in the module docs.
pub fn run_pipeline(workloads: &[Workload], opts: &PipelineOptions) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": {BENCH_SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"suite\": \"{BENCH_SUITE}\",");
    let _ = writeln!(out, "  \"jobs\": {},", opts.jobs);
    let _ = writeln!(out, "  \"window_size\": {},", opts.window_size);
    out.push_str("  \"workloads\": [");
    let (mut t_events, mut t_races, mut t_solved, mut t_wall) = (0u64, 0u64, 0u64, 0u64);
    for (i, w) in workloads.iter().enumerate() {
        let cfg = DetectorConfig {
            window_size: opts.window_size,
            solver_timeout: opts.solver_timeout,
            parallelism: opts.jobs,
            ..Default::default()
        };
        let report = RaceDetector::with_config(cfg).detect(&w.trace);
        let s = &report.stats;
        t_events += w.trace.len() as u64;
        t_races += report.n_races() as u64;
        t_solved += s.cops_solved as u64;
        t_wall += us(s.wall_time);
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"name\": ");
        write_str(&mut out, &w.name);
        let _ = write!(
            out,
            ", \"events\": {}, \"races\": {}, \"windows\": {},\n     \
             \"cops_solved\": {}, \"sat\": {}, \"unsat\": {}, \"undecided\": {},\n     \
             \"solver_decisions\": {}, \"solver_conflicts\": {}, \"solver_propagations\": {},\n     \
             \"wall_time_us\": {}, \"solver_time_us\": {}}}",
            w.trace.len(),
            report.n_races(),
            s.windows,
            s.cops_solved,
            s.sat,
            s.unsat,
            s.undecided,
            s.solver_totals.decisions,
            s.solver_totals.conflicts,
            s.solver_totals.propagations,
            us(s.wall_time),
            us(s.solver_time),
        );
    }
    out.push_str("\n  ],\n");
    let _ = writeln!(
        out,
        "  \"totals\": {{\"workloads\": {}, \"events\": {t_events}, \"races\": {t_races}, \
         \"cops_solved\": {t_solved}, \"wall_time_us\": {t_wall}}}",
        workloads.len(),
    );
    out.push('}');
    out.push('\n');
    out
}

/// Integer fields every per-workload entry must carry, all non-negative.
const WORKLOAD_INT_KEYS: [&str; 11] = [
    "events",
    "races",
    "windows",
    "cops_solved",
    "sat",
    "unsat",
    "undecided",
    "solver_decisions",
    "solver_conflicts",
    "solver_propagations",
    "wall_time_us",
];

/// Validates a `BENCH_pr3.json` document against the schema: version and
/// suite tags, required keys, non-negative integers, the
/// `cops_solved == sat + unsat + undecided` invariant, and totals that sum
/// the per-workload values. Returns a description of the first violation.
pub fn validate_bench_json(json: &str) -> Result<(), String> {
    let doc = parse_json(json).map_err(|e| format!("not valid JSON: {e}"))?;
    let version = doc
        .field("schema_version")
        .and_then(|v| v.as_int())
        .map_err(|e| e.to_string())?;
    if version != BENCH_SCHEMA_VERSION as i64 {
        return Err(format!(
            "schema_version is {version}, expected {BENCH_SCHEMA_VERSION}"
        ));
    }
    let suite = doc
        .field("suite")
        .and_then(|v| v.as_str().map(str::to_string))
        .map_err(|e| e.to_string())?;
    if suite != BENCH_SUITE {
        return Err(format!("suite is `{suite}`, expected `{BENCH_SUITE}`"));
    }
    for key in ["jobs", "window_size"] {
        let v = doc
            .field(key)
            .and_then(|v| v.as_int())
            .map_err(|e| format!("{key}: {e}"))?;
        if v <= 0 {
            return Err(format!("{key} must be positive, got {v}"));
        }
    }
    let entries = doc
        .field("workloads")
        .and_then(|v| v.as_array().map(<[_]>::to_vec))
        .map_err(|e| format!("workloads: {e}"))?;
    if entries.is_empty() {
        return Err("workloads array is empty".into());
    }
    let (mut t_events, mut t_races, mut t_solved) = (0i64, 0i64, 0i64);
    for (i, entry) in entries.iter().enumerate() {
        let name = entry
            .field("name")
            .and_then(|v| v.as_str().map(str::to_string))
            .map_err(|e| format!("workloads[{i}].name: {e}"))?;
        let int = |key: &str| -> Result<i64, String> {
            let v = entry
                .field(key)
                .and_then(|v| v.as_int())
                .map_err(|e| format!("workload `{name}`: {key}: {e}"))?;
            if v < 0 {
                return Err(format!("workload `{name}`: {key} is negative ({v})"));
            }
            Ok(v)
        };
        for key in WORKLOAD_INT_KEYS {
            int(key)?;
        }
        int("solver_time_us")?;
        let (solved, sat, unsat, undecided) = (
            int("cops_solved")?,
            int("sat")?,
            int("unsat")?,
            int("undecided")?,
        );
        if solved != sat + unsat + undecided {
            return Err(format!(
                "workload `{name}`: cops_solved={solved} but sat+unsat+undecided={}",
                sat + unsat + undecided
            ));
        }
        t_events += int("events")?;
        t_races += int("races")?;
        t_solved += solved;
    }
    let totals = doc.field("totals").map_err(|e| e.to_string())?;
    let total = |key: &str| -> Result<i64, String> {
        let v = totals
            .field(key)
            .and_then(|v| v.as_int())
            .map_err(|e| format!("totals.{key}: {e}"))?;
        if v < 0 {
            return Err(format!("totals.{key} is negative ({v})"));
        }
        Ok(v)
    };
    if total("workloads")? != entries.len() as i64 {
        return Err("totals.workloads does not match the workloads array length".into());
    }
    for (key, sum) in [
        ("events", t_events),
        ("races", t_races),
        ("cops_solved", t_solved),
    ] {
        let v = total(key)?;
        if v != sum {
            return Err(format!(
                "totals.{key} is {v} but the per-workload sum is {sum}"
            ));
        }
    }
    total("wall_time_us")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_pipeline_emits_valid_document() {
        let json = run_pipeline(&smoke_workloads(), &PipelineOptions::default());
        validate_bench_json(&json).unwrap();
        assert!(json.contains("\"suite\": \"pr3\""), "{json}");
        assert!(json.contains("\"name\": \"example"), "{json}");
    }

    #[test]
    fn validator_rejects_tampered_documents() {
        let json = run_pipeline(&smoke_workloads(), &PipelineOptions::default());
        let wrong_version = json.replace("\"schema_version\": 1", "\"schema_version\": 99");
        assert!(validate_bench_json(&wrong_version)
            .unwrap_err()
            .contains("schema_version"));
        let missing_key = json.replace("\"races\": ", "\"r4ces\": ");
        assert!(validate_bench_json(&missing_key).is_err());
        assert!(validate_bench_json("not json").is_err());
        assert!(validate_bench_json("{}").is_err());
    }
}
