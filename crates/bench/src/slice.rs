//! Relevance-slicing benchmark: the `BENCH_pr5.json` harness mode.
//!
//! Compares the detector with cone-of-influence slicing on (the default)
//! against `--no-slice` on *wide-window* workloads: a small racy head plus
//! a message-passing pair, followed by many filler threads hammering
//! thread-local variables under a ring of pairwise-shared locks. The whole
//! trace fits in one window, so the unsliced encoder pays a quadratic
//! Φ_lock over every filler critical section while the cone of the
//! interesting COPs never touches them.
//!
//! ```sh
//! cargo run -p rvbench --release --bin slice_pipeline -- --out BENCH_pr5.json
//! ```
//!
//! # Document schema (version 1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "suite": "pr5",
//!   "mode": "full",
//!   "jobs": 4,
//!   "workloads": [
//!     {"name": "wide_large", "events": 893, "window_size": 893,
//!      "sliced":   {"races": 2, "constraints": 310, "cone_events": 40,
//!                   "window_events": 2679, "wall_time_us": 5210},
//!      "unsliced": {"races": 2, "constraints": 9480, "cone_events": 2679,
//!                   "window_events": 2679, "wall_time_us": 31240}}
//!   ]
//! }
//! ```
//!
//! `races` is count-type and must be equal between the two runs for every
//! workload (the soundness contract: slicing never changes the verdict).
//! `cone_events`/`window_events`/`constraints` are deterministic encoder
//! counters summed over COP records; the validator requires the sliced run
//! to actually slice (`cone_events < window_events`) and the unsliced run
//! not to (`cone_events == window_events`). `wall_time_us` is run-shape
//! dependent; only `"full"` documents must show the ≥2x constraint
//! reduction and ≥1.5x wall-clock speedup on the largest workload.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use rvcore::{DetectorConfig, RaceDetector};
use rvsim::workloads::Workload;
use rvtrace::{parse_json, ThreadId, TraceBuilder};

/// Version of the `BENCH_pr5.json` document. Bumped on any incompatible
/// change (key renames, section shape).
pub const SLICE_BENCH_SCHEMA_VERSION: u64 = 1;

/// The suite tag stamped into every document this harness emits.
pub const SLICE_BENCH_SUITE: &str = "pr5";

/// Detection knobs for a slicing-bench run.
#[derive(Debug, Clone, Copy)]
pub struct SliceBenchOptions {
    /// Per-COP solver budget.
    pub solver_timeout: Duration,
    /// Worker threads for both runs.
    pub jobs: usize,
}

impl Default for SliceBenchOptions {
    fn default() -> Self {
        SliceBenchOptions {
            solver_timeout: Duration::from_secs(10),
            jobs: 4,
        }
    }
}

/// Builds a wide-window workload: a racy pair on `x`, a message-passing
/// pair on `y` (guarded by a `flag` read + branch, so it is *not* a race),
/// then `fillers` threads each doing `cluster` rounds of lock-protected
/// writes to their own variable, with each lock shared between ring
/// neighbours so every lock carries many cross-thread critical sections.
pub fn wide_window_workload(name: &str, fillers: usize, cluster: usize) -> Workload {
    assert!(fillers >= 2, "the lock ring needs at least two fillers");
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let y = b.var("y");
    let flag = b.var("flag");
    let t1 = ThreadId::MAIN;
    let t2 = b.fork(t1);
    let filler_threads: Vec<ThreadId> = (0..fillers).map(|_| b.fork(t1)).collect();
    let locks: Vec<_> = (0..fillers).map(|i| b.new_lock(&format!("l{i}"))).collect();
    let vars: Vec<_> = (0..fillers).map(|i| b.var(&format!("f{i}"))).collect();

    // The interesting head: one real race...
    b.write(t1, x, 1);
    b.write(t2, x, 2);
    // ...and a message-passing pair the branch makes order-dependent:
    // the `y` read can only run after `flag` reads 1, which forces the
    // `y` write first — (write y, read y) must come out UNSAT.
    b.write(t1, y, 1);
    b.write(t1, flag, 1);
    b.read(t2, flag, 1);
    b.branch(t2);
    b.read(t2, y, 1);

    // The wide tail: irrelevant to every COP above, expensive to encode.
    for round in 0..cluster as i64 {
        for (i, &t) in filler_threads.iter().enumerate() {
            for l in [locks[i], locks[(i + 1) % fillers]] {
                b.acquire(t, l);
                b.write(t, vars[i], round);
                b.release(t, l);
            }
        }
    }
    Workload {
        name: name.to_string(),
        trace: b.finish(),
    }
}

/// The smallest wide-window workload, for smoke runs and the schema test.
pub fn smoke_slice_workloads() -> Vec<Workload> {
    vec![wide_window_workload("wide_small", 4, 4)]
}

/// The full set: the smoke size plus a tail wide enough that the
/// unsliced Φ_lock dominates everything else.
pub fn full_slice_workloads() -> Vec<Workload> {
    vec![
        wide_window_workload("wide_small", 4, 4),
        wide_window_workload("wide_medium", 6, 8),
        wide_window_workload("wide_large", 10, 14),
    ]
}

fn us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

struct SliceRun {
    races: u64,
    constraints: u64,
    cone_events: u64,
    window_events: u64,
    wall: Duration,
}

fn run_once(workload: &Workload, opts: &SliceBenchOptions, slice: bool) -> SliceRun {
    let cfg = DetectorConfig {
        // One window spanning the whole trace: the regime slicing targets.
        window_size: workload.trace.len().max(1),
        solver_timeout: opts.solver_timeout,
        parallelism: opts.jobs,
        slice,
        // The tiered cascade would screen COPs away from the encoder and
        // confound the slicing A/B; this suite isolates the slicer.
        tiers: false,
        ..Default::default()
    };
    let t0 = Instant::now();
    let report = RaceDetector::with_config(cfg).detect(&workload.trace);
    SliceRun {
        races: report.n_races() as u64,
        constraints: report.stats.constraints_encoded,
        cone_events: report.stats.cone_events,
        window_events: report.stats.window_events_encoded,
        wall: t0.elapsed(),
    }
}

fn write_run(out: &mut String, key: &str, run: &SliceRun) {
    let _ = write!(
        out,
        "\"{key}\": {{\"races\": {}, \"constraints\": {}, \"cone_events\": {}, \
         \"window_events\": {}, \"wall_time_us\": {}}}",
        run.races,
        run.constraints,
        run.cone_events,
        run.window_events,
        us(run.wall),
    );
}

/// Runs each workload with slicing on and off and returns the versioned
/// comparison document described in the module docs. `mode` is stamped
/// into the document and selects how much the validator enforces
/// (`"full"` adds the reduction/speedup invariants).
pub fn run_slice_pipeline(workloads: &[Workload], opts: &SliceBenchOptions, mode: &str) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": {SLICE_BENCH_SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"suite\": \"{SLICE_BENCH_SUITE}\",");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"jobs\": {},", opts.jobs);
    out.push_str("  \"workloads\": [");
    for (i, w) in workloads.iter().enumerate() {
        let sliced = run_once(w, opts, true);
        let unsliced = run_once(w, opts, false);
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"events\": {}, \"window_size\": {},\n     ",
            w.name,
            w.trace.len(),
            w.trace.len().max(1),
        );
        write_run(&mut out, "sliced", &sliced);
        out.push_str(",\n     ");
        write_run(&mut out, "unsliced", &unsliced);
        out.push('}');
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Integer fields each run sub-object must carry, all non-negative.
const RUN_INT_KEYS: [&str; 5] = [
    "races",
    "constraints",
    "cone_events",
    "window_events",
    "wall_time_us",
];

/// Validates a `BENCH_pr5.json` document: version/suite/mode tags,
/// required keys, non-negative integers, `races` equality between the two
/// runs on every workload, the sliced run actually slicing
/// (`cone_events < window_events`) while the unsliced one does not, and —
/// for `"full"` documents — a ≥2x constraint reduction and ≥1.5x
/// wall-clock speedup on the largest workload. Returns a description of
/// the first violation.
pub fn validate_slice_bench_json(json: &str) -> Result<(), String> {
    let doc = parse_json(json).map_err(|e| format!("not valid JSON: {e}"))?;
    let version = doc
        .field("schema_version")
        .and_then(|v| v.as_int())
        .map_err(|e| e.to_string())?;
    if version != SLICE_BENCH_SCHEMA_VERSION as i64 {
        return Err(format!(
            "schema_version is {version}, expected {SLICE_BENCH_SCHEMA_VERSION}"
        ));
    }
    let suite = doc
        .field("suite")
        .and_then(|v| v.as_str().map(str::to_string))
        .map_err(|e| e.to_string())?;
    if suite != SLICE_BENCH_SUITE {
        return Err(format!(
            "suite is `{suite}`, expected `{SLICE_BENCH_SUITE}`"
        ));
    }
    let mode = doc
        .field("mode")
        .and_then(|v| v.as_str().map(str::to_string))
        .map_err(|e| e.to_string())?;
    if mode != "smoke" && mode != "full" {
        return Err(format!("mode is `{mode}`, expected `smoke` or `full`"));
    }
    let jobs = doc
        .field("jobs")
        .and_then(|v| v.as_int())
        .map_err(|e| format!("jobs: {e}"))?;
    if jobs <= 0 {
        return Err(format!("jobs must be positive, got {jobs}"));
    }
    let entries = doc
        .field("workloads")
        .and_then(|v| v.as_array().map(<[_]>::to_vec))
        .map_err(|e| format!("workloads: {e}"))?;
    if entries.is_empty() {
        return Err("workloads array is empty".into());
    }
    let mut largest: Option<(i64, String, [i64; 10])> = None;
    for (i, entry) in entries.iter().enumerate() {
        let name = entry
            .field("name")
            .and_then(|v| v.as_str().map(str::to_string))
            .map_err(|e| format!("workloads[{i}].name: {e}"))?;
        let top = |key: &str| -> Result<i64, String> {
            let v = entry
                .field(key)
                .and_then(|v| v.as_int())
                .map_err(|e| format!("workload `{name}`: {key}: {e}"))?;
            if v < 0 {
                return Err(format!("workload `{name}`: {key} is negative ({v})"));
            }
            Ok(v)
        };
        let events = top("events")?;
        top("window_size")?;
        let mut runs = [0i64; 10];
        for (r, run_key) in ["sliced", "unsliced"].into_iter().enumerate() {
            let run = entry
                .field(run_key)
                .map_err(|e| format!("workload `{name}`: {run_key}: {e}"))?;
            for (k, key) in RUN_INT_KEYS.into_iter().enumerate() {
                let v = run
                    .field(key)
                    .and_then(|v| v.as_int())
                    .map_err(|e| format!("workload `{name}`: {run_key}.{key}: {e}"))?;
                if v < 0 {
                    return Err(format!(
                        "workload `{name}`: {run_key}.{key} is negative ({v})"
                    ));
                }
                runs[r * 5 + k] = v;
            }
        }
        let [s_races, _, s_cone, s_window, _, u_races, _, u_cone, u_window, _] = runs;
        if s_races != u_races {
            return Err(format!(
                "workload `{name}`: sliced found {s_races} race(s) but unsliced \
                 found {u_races} — slicing must not change the verdict"
            ));
        }
        if s_window > 0 && s_cone >= s_window {
            return Err(format!(
                "workload `{name}`: sliced cone_events ({s_cone}) is not below \
                 window_events ({s_window}) — nothing was sliced"
            ));
        }
        if u_cone != u_window {
            return Err(format!(
                "workload `{name}`: unsliced cone_events ({u_cone}) differs from \
                 window_events ({u_window}) — the unsliced run must not slice"
            ));
        }
        if largest.as_ref().is_none_or(|(e, ..)| events > *e) {
            largest = Some((events, name, runs));
        }
    }
    if mode == "full" {
        let (_, name, runs) = largest.expect("workloads array checked non-empty");
        let [_, s_constraints, _, _, s_wall, _, u_constraints, _, _, u_wall] = runs;
        if u_constraints < 2 * s_constraints {
            return Err(format!(
                "workload `{name}`: unsliced constraints ({u_constraints}) are not \
                 ≥2x sliced ({s_constraints})"
            ));
        }
        if 2 * u_wall < 3 * s_wall {
            return Err(format!(
                "workload `{name}`: unsliced wall_time_us ({u_wall}) is not ≥1.5x \
                 sliced ({s_wall})"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_slice_pipeline_emits_valid_document() {
        let json = run_slice_pipeline(
            &smoke_slice_workloads(),
            &SliceBenchOptions::default(),
            "smoke",
        );
        validate_slice_bench_json(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        assert!(json.contains("\"suite\": \"pr5\""), "{json}");
        assert!(json.contains("\"name\": \"wide_small\""), "{json}");
    }

    #[test]
    fn validator_rejects_tampered_documents() {
        let json = run_slice_pipeline(
            &smoke_slice_workloads(),
            &SliceBenchOptions::default(),
            "smoke",
        );
        let wrong_version = json.replace("\"schema_version\": 1", "\"schema_version\": 99");
        assert!(validate_slice_bench_json(&wrong_version)
            .unwrap_err()
            .contains("schema_version"));
        let wrong_suite = json.replace("\"suite\": \"pr5\"", "\"suite\": \"pr4\"");
        assert!(validate_slice_bench_json(&wrong_suite)
            .unwrap_err()
            .contains("suite"));
        assert!(validate_slice_bench_json("not json").is_err());
        assert!(validate_slice_bench_json("{}").is_err());
    }

    #[test]
    fn validator_enforces_verdict_equality_and_full_mode_ratios() {
        // Hand-built document: races disagree between the runs.
        let disagreeing = r#"{
  "schema_version": 1, "suite": "pr5", "mode": "smoke",
  "jobs": 1,
  "workloads": [
    {"name": "w", "events": 10, "window_size": 10,
     "sliced": {"races": 1, "constraints": 5, "cone_events": 4, "window_events": 10, "wall_time_us": 3},
     "unsliced": {"races": 2, "constraints": 20, "cone_events": 10, "window_events": 10, "wall_time_us": 9}}
  ]
}"#;
        assert!(validate_slice_bench_json(disagreeing)
            .unwrap_err()
            .contains("verdict"));
        // The sliced run must actually slice.
        let unslicing = disagreeing
            .replace("\"races\": 2", "\"races\": 1")
            .replace("\"cone_events\": 4", "\"cone_events\": 10");
        assert!(validate_slice_bench_json(&unslicing)
            .unwrap_err()
            .contains("nothing was sliced"));
        // Full mode: the constraint-reduction ratio is enforced.
        let weak_reduction = r#"{
  "schema_version": 1, "suite": "pr5", "mode": "full",
  "jobs": 1,
  "workloads": [
    {"name": "w", "events": 10, "window_size": 10,
     "sliced": {"races": 1, "constraints": 15, "cone_events": 4, "window_events": 10, "wall_time_us": 3},
     "unsliced": {"races": 1, "constraints": 20, "cone_events": 10, "window_events": 10, "wall_time_us": 9}}
  ]
}"#;
        assert!(validate_slice_bench_json(weak_reduction)
            .unwrap_err()
            .contains("≥2x"));
        // And the speedup ratio.
        let weak_speedup = weak_reduction
            .replace("\"constraints\": 15", "\"constraints\": 5")
            .replace("\"wall_time_us\": 3", "\"wall_time_us\": 8");
        assert!(validate_slice_bench_json(&weak_speedup)
            .unwrap_err()
            .contains("≥1.5x"));
        // Same documents in smoke mode pass: ratios are not enforced.
        let smoke = weak_reduction.replace("\"mode\": \"full\"", "\"mode\": \"smoke\"");
        validate_slice_bench_json(&smoke).unwrap();
    }
}
