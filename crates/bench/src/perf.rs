//! Raw-speed benchmark: the `BENCH_pr10.json` harness mode.
//!
//! Certifies the trace→solve hot-path overhaul (arena trace storage,
//! batched/incremental window sessions, the tier cascade, relevance
//! slicing) by running every workload under two configurations of the
//! *same* binary:
//!
//! * **baseline** — the PR4-era detection pipeline: fixed windows, no
//!   slicing, no tier screens, no shared window encoding, a fresh
//!   encode-and-solve per COP (`slice`/`tiers`/`batch_windows`/
//!   `incremental` all off);
//! * **optimized** — the shipped defaults: slicing, tiers, the batched
//!   incremental window session.
//!
//! Three workloads cover the three regimes: `stream_large` (the
//! BENCH_pr4 100K-event streaming workload, shared by name so the
//! `bench_schema` trend gate can compare this document's wall clock
//! against the committed PR4 measurement), `handoff_large` (a ~100K-event
//! flag-handoff trace where the screens collapse ~11K solver calls), and
//! `residue_large` (a double-justifier handoff whose COPs survive both
//! screens, exercising the sliced incremental solver core — see
//! [`double_flag_workload`]).
//!
//! A fourth section races the determinism contract: the same residue
//! workload is detected under `--portfolio` on/off × jobs 1/2/4/8 (batch
//! off, incremental on, the only mode portfolio changes), and all eight
//! `deterministic_summary` renderings must be byte-identical; the
//! document records how many matched and a fingerprint of the common
//! summary.
//!
//! ```sh
//! cargo run -p rvbench --release --bin perf_pipeline -- --out BENCH_pr10.json
//! ```
//!
//! # Document schema (version 1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "suite": "pr10",
//!   "mode": "full",
//!   "jobs": 4,
//!   "window_size": 2000,
//!   "warmup_iters": 1,
//!   "workloads": [
//!     {"name": "handoff_large", "events": 100963, "windows": 51,
//!      "baseline":  {"races": 1, "sat": 1, "unsat": 11200, "cops_solved": 11201,
//!                    "tier_confirmed": 0, "tier_refuted": 0, "tier_residue": 0,
//!                    "sliced_out": 0, "solver_solves": 11201, "wall_time_us": 29046776},
//!      "optimized": {"races": 1, "sat": 1, "unsat": 11200, "cops_solved": 11201,
//!                    "tier_confirmed": 1, "tier_refuted": 11200, "tier_residue": 0,
//!                    "sliced_out": 0, "solver_solves": 0, "wall_time_us": 135320}}
//!   ],
//!   "speedup_x100": 21464,
//!   "portfolio": {"name": "residue_small", "configs": 8, "matched": 8,
//!                 "fingerprint": 1234567890}
//! }
//! ```
//!
//! `races`, `sat`, `unsat` and `cops_solved` are count-type and must be
//! equal between the two runs for every workload (the soundness
//! contract: none of the optimizations may change a verdict). The
//! baseline run must report zero tier counters and zero sliced events
//! (it runs with both machines off); the optimized run's tier counters
//! must partition `cops_solved`. `wall_time_us` is run-shape dependent;
//! only `"full"` documents must show the ≥5x end-to-end speedup on the
//! largest workload (`speedup_x100 >= 500`), plus — summed over the
//! optimized runs — non-zero `tier_refuted`, `sliced_out` and
//! `solver_solves` (the screens screened, the slicer sliced, and the
//! incremental core still solved a residue). The portfolio section must
//! report `matched == configs` in every mode: byte-identity across
//! portfolio on/off and worker counts is a hard invariant, not a
//! full-run luxury.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use rvcore::{DetectorConfig, RaceDetector, WindowMode};
use rvsim::workloads::Workload;
use rvtrace::{parse_json, ThreadId, TraceBuilder};

use crate::stream::racy_stream_workload;
use crate::tier::flag_handoff_workload;

/// Version of the `BENCH_pr10.json` document. Bumped on any incompatible
/// change (key renames, section shape).
pub const PERF_BENCH_SCHEMA_VERSION: u64 = 1;

/// The suite tag stamped into every document this harness emits.
pub const PERF_BENCH_SUITE: &str = "pr10";

/// End-to-end speedup floor (×100) enforced on the largest workload of a
/// `"full"` document.
pub const PERF_SPEEDUP_FLOOR_X100: i64 = 500;

/// Detection knobs for a perf-bench run.
#[derive(Debug, Clone, Copy)]
pub struct PerfBenchOptions {
    /// Window size in events for both configurations.
    pub window_size: usize,
    /// Per-COP solver budget.
    pub solver_timeout: Duration,
    /// Worker threads for both configurations.
    pub jobs: usize,
    /// Untimed warmup detections per workload before the timed runs
    /// (allocator growth, cache warming); recorded in the document.
    pub warmup_iters: u64,
}

impl Default for PerfBenchOptions {
    fn default() -> Self {
        PerfBenchOptions {
            window_size: 2_000,
            solver_timeout: Duration::from_secs(5),
            jobs: 4,
            warmup_iters: 1,
        }
    }
}

/// Builds a *double-justifier* flag-handoff workload: the same shape as
/// [`flag_handoff_workload`] — a sync-free racy head plus `pairs` ×
/// `blocks` lock-protected message-passing rounds — except the producer
/// publishes each flag **twice**, in two separate critical sections:
///
/// ```text
/// producer_j:  w y_jk 1;  acq l_j; w f_jk 1; rel l_j;  acq l_j; w f_jk 1; rel l_j
/// consumer_j:  acq l_j;  r f_jk 1;  rel l_j;  branch;  r y_jk 1
/// ```
///
/// The payload COP `(w y_jk, r y_jk)` still survives the quick check (no
/// common lock) and is still `Unsat` — *every* same-value justifier of
/// the forced flag read sits between the payload write and the payload
/// read — but Tier B's entailment refuter only orders reads with a
/// *unique* justifier, so the COP lands in the residue and reaches the
/// sliced incremental solver. That makes this the workload where the
/// session machinery (shared skeleton, per-COP assumption queries,
/// learnt-clause retention) actually runs.
pub fn double_flag_workload(name: &str, pairs: usize, blocks: usize) -> Workload {
    assert!(pairs >= 1 && blocks >= 1);
    let mut b = TraceBuilder::new();
    let h = b.var("h");
    let main = ThreadId::MAIN;
    let reader = b.fork(main);
    let producers: Vec<ThreadId> = (0..pairs).map(|_| b.fork(main)).collect();
    let consumers: Vec<ThreadId> = (0..pairs).map(|_| b.fork(main)).collect();
    let locks: Vec<_> = (0..pairs).map(|j| b.new_lock(&format!("l{j}"))).collect();

    // The head: one real race (Tier A's territory under the cascade).
    b.write(main, h, 1);
    b.read(reader, h, 1);

    for k in 0..blocks {
        for j in 0..pairs {
            let y = b.var(&format!("y{j}_{k}"));
            let f = b.var(&format!("f{j}_{k}"));
            b.write(producers[j], y, 1);
            b.acquire(producers[j], locks[j]);
            b.write(producers[j], f, 1);
            b.release(producers[j], locks[j]);
            b.acquire(producers[j], locks[j]);
            b.write(producers[j], f, 1);
            b.release(producers[j], locks[j]);
            b.acquire(consumers[j], locks[j]);
            b.read(consumers[j], f, 1);
            b.release(consumers[j], locks[j]);
            b.branch(consumers[j]);
            b.read(consumers[j], y, 1);
        }
    }
    Workload {
        name: name.to_string(),
        trace: b.finish(),
    }
}

/// The smoke set: a few-window streaming trace plus a small residue
/// workload, for smoke runs and the schema test.
pub fn smoke_perf_workloads() -> Vec<Workload> {
    vec![
        racy_stream_workload("stream_small", 4_000),
        double_flag_workload("residue_small", 4, 12),
    ]
}

/// The full set: the shared BENCH_pr4 100K-event streaming workload (the
/// trend-gate anchor), a ~100K-event flag handoff (the largest workload,
/// where the speedup floor is enforced), and the residue workload that
/// keeps the sliced incremental solver honest.
pub fn full_perf_workloads() -> Vec<Workload> {
    vec![
        racy_stream_workload("stream_large", 100_000),
        flag_handoff_workload("handoff_large", 40, 280),
        double_flag_workload("residue_large", 8, 40),
    ]
}

/// The workload the portfolio byte-identity matrix runs on, per mode.
/// Residue-heavy (so the racer actually races the screens) but small:
/// the matrix detects it eight times.
pub fn portfolio_workload(mode: &str) -> Workload {
    if mode == "full" {
        double_flag_workload("residue_small", 4, 12)
    } else {
        double_flag_workload("residue_tiny", 2, 6)
    }
}

fn us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// The PR4-era pipeline: fixed windows, everything the later PRs added
/// switched off.
fn baseline_config(opts: &PerfBenchOptions) -> DetectorConfig {
    DetectorConfig {
        window_size: opts.window_size,
        solver_timeout: opts.solver_timeout,
        parallelism: opts.jobs,
        window_mode: WindowMode::Fixed,
        slice: false,
        tiers: false,
        batch_windows: false,
        incremental: false,
        portfolio: false,
        ..Default::default()
    }
}

/// The shipped defaults, pinned to the same window shape as the baseline.
fn optimized_config(opts: &PerfBenchOptions) -> DetectorConfig {
    DetectorConfig {
        slice: true,
        tiers: true,
        batch_windows: true,
        incremental: true,
        ..baseline_config(opts)
    }
}

struct PerfRun {
    races: u64,
    sat: u64,
    unsat: u64,
    cops_solved: u64,
    tier_confirmed: u64,
    tier_refuted: u64,
    tier_residue: u64,
    sliced_out: u64,
    solver_solves: u64,
    wall: Duration,
}

/// One end-to-end run: serialize → parse → detect, so the wall clock is
/// comparable with the whole-file pipeline BENCH_pr4 measured.
fn run_once(json: &str, cfg: DetectorConfig) -> (PerfRun, u64) {
    let t0 = Instant::now();
    let trace = rvtrace::from_json(json).expect("round-trip parse cannot fail");
    let report = RaceDetector::with_config(cfg).detect(&trace);
    let wall = t0.elapsed();
    let run = PerfRun {
        races: report.n_races() as u64,
        sat: report.stats.sat as u64,
        unsat: report.stats.unsat as u64,
        cops_solved: report.stats.cops_solved as u64,
        tier_confirmed: report.stats.tier_confirmed as u64,
        tier_refuted: report.stats.tier_refuted as u64,
        tier_residue: report.stats.tier_residue as u64,
        sliced_out: report.stats.sliced_out,
        solver_solves: report.stats.solver_totals.solves,
        wall,
    };
    (run, report.stats.windows as u64)
}

fn write_run(out: &mut String, key: &str, run: &PerfRun) {
    let _ = write!(
        out,
        "\"{key}\": {{\"races\": {}, \"sat\": {}, \"unsat\": {}, \"cops_solved\": {},\n      \
         \"tier_confirmed\": {}, \"tier_refuted\": {}, \"tier_residue\": {},\n      \
         \"sliced_out\": {}, \"solver_solves\": {}, \"wall_time_us\": {}}}",
        run.races,
        run.sat,
        run.unsat,
        run.cops_solved,
        run.tier_confirmed,
        run.tier_refuted,
        run.tier_residue,
        run.sliced_out,
        run.solver_solves,
        us(run.wall),
    );
}

/// FNV-1a over the summary bytes, masked into the non-negative `i64`
/// range the integer-only JSON schema can carry.
fn fingerprint(s: &str) -> i64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h & 0x7fff_ffff_ffff_ffff) as i64
}

/// Detects `workload` under portfolio on/off × jobs 1/2/4/8 (batch off,
/// incremental on — the per-COP session mode portfolio races in) and
/// returns `(configs, matched, fingerprint)` where `matched` counts the
/// runs whose `deterministic_summary` equals the first one's.
pub fn portfolio_matrix(workload: &Workload, opts: &PerfBenchOptions) -> (u64, u64, i64) {
    let mut first: Option<String> = None;
    let mut configs = 0u64;
    let mut matched = 0u64;
    for portfolio in [false, true] {
        for jobs in [1usize, 2, 4, 8] {
            let cfg = DetectorConfig {
                batch_windows: false,
                portfolio,
                parallelism: jobs,
                ..optimized_config(opts)
            };
            let summary = RaceDetector::with_config(cfg)
                .detect(&workload.trace)
                .deterministic_summary();
            configs += 1;
            match &first {
                None => {
                    first = Some(summary);
                    matched += 1;
                }
                Some(f) if *f == summary => matched += 1,
                Some(_) => {}
            }
        }
    }
    let fp = fingerprint(first.as_deref().unwrap_or(""));
    (configs, matched, fp)
}

/// Runs each workload end-to-end under the baseline and optimized
/// configurations (after `warmup_iters` untimed optimized passes), runs
/// the portfolio byte-identity matrix, and returns the versioned
/// document described in the module docs. `mode` is stamped into the
/// document and selects how much the validator enforces (`"full"` adds
/// the speedup floor and the nonzero-counter invariants).
pub fn run_perf_pipeline(workloads: &[Workload], opts: &PerfBenchOptions, mode: &str) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": {PERF_BENCH_SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"suite\": \"{PERF_BENCH_SUITE}\",");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"jobs\": {},", opts.jobs);
    let _ = writeln!(out, "  \"window_size\": {},", opts.window_size);
    let _ = writeln!(out, "  \"warmup_iters\": {},", opts.warmup_iters);
    out.push_str("  \"workloads\": [");
    let mut largest: Option<(usize, Duration, Duration)> = None;
    for (i, w) in workloads.iter().enumerate() {
        let json = rvtrace::to_json(&w.trace);
        for _ in 0..opts.warmup_iters {
            run_once(&json, optimized_config(opts));
        }
        let (baseline, windows) = run_once(&json, baseline_config(opts));
        let (optimized, _) = run_once(&json, optimized_config(opts));
        if largest.as_ref().is_none_or(|&(e, ..)| w.trace.len() > e) {
            largest = Some((w.trace.len(), baseline.wall, optimized.wall));
        }
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"events\": {}, \"windows\": {},\n     ",
            w.name,
            w.trace.len(),
            windows,
        );
        write_run(&mut out, "baseline", &baseline);
        out.push_str(",\n     ");
        write_run(&mut out, "optimized", &optimized);
        out.push('}');
    }
    out.push_str("\n  ],\n");
    let (_, base_wall, opt_wall) = largest.expect("at least one workload");
    let speedup_x100 = (us(base_wall) as i64 * 100) / (us(opt_wall) as i64).max(1);
    let _ = writeln!(out, "  \"speedup_x100\": {speedup_x100},");
    let pw = portfolio_workload(mode);
    let (configs, matched, fp) = portfolio_matrix(&pw, opts);
    let _ = writeln!(
        out,
        "  \"portfolio\": {{\"name\": \"{}\", \"configs\": {configs}, \"matched\": {matched}, \
         \"fingerprint\": {fp}}}",
        pw.name,
    );
    out.push_str("}\n");
    out
}

/// Integer fields each run sub-object must carry, all non-negative.
const RUN_INT_KEYS: [&str; 10] = [
    "races",
    "sat",
    "unsat",
    "cops_solved",
    "tier_confirmed",
    "tier_refuted",
    "tier_residue",
    "sliced_out",
    "solver_solves",
    "wall_time_us",
];

/// Validates a `BENCH_pr10.json` document: version/suite/mode tags,
/// required keys, non-negative integers, a warmup pass (`warmup_iters ≥
/// 1`), verdict equality (`races`, `sat`, `unsat`, `cops_solved`)
/// between baseline and optimized on every workload, a clean baseline
/// (zero tier counters, zero sliced events), optimized tier counters
/// partitioning `cops_solved`, `speedup_x100` consistent with the
/// largest workload's wall clocks, and portfolio byte-identity
/// (`matched == configs`). `"full"` documents must additionally clear
/// the ≥5x speedup floor on the largest workload and show non-zero
/// optimized `tier_refuted`, `sliced_out` and `solver_solves` summed
/// over the workloads. Returns a description of the first violation.
pub fn validate_perf_bench_json(json: &str) -> Result<(), String> {
    let doc = parse_json(json).map_err(|e| format!("not valid JSON: {e}"))?;
    let version = doc
        .field("schema_version")
        .and_then(|v| v.as_int())
        .map_err(|e| e.to_string())?;
    if version != PERF_BENCH_SCHEMA_VERSION as i64 {
        return Err(format!(
            "schema_version is {version}, expected {PERF_BENCH_SCHEMA_VERSION}"
        ));
    }
    let suite = doc
        .field("suite")
        .and_then(|v| v.as_str().map(str::to_string))
        .map_err(|e| e.to_string())?;
    if suite != PERF_BENCH_SUITE {
        return Err(format!("suite is `{suite}`, expected `{PERF_BENCH_SUITE}`"));
    }
    let mode = doc
        .field("mode")
        .and_then(|v| v.as_str().map(str::to_string))
        .map_err(|e| e.to_string())?;
    if mode != "smoke" && mode != "full" {
        return Err(format!("mode is `{mode}`, expected `smoke` or `full`"));
    }
    for key in ["jobs", "window_size", "warmup_iters"] {
        let v = doc
            .field(key)
            .and_then(|v| v.as_int())
            .map_err(|e| format!("{key}: {e}"))?;
        if v <= 0 {
            return Err(format!("{key} must be positive, got {v}"));
        }
    }
    let entries = doc
        .field("workloads")
        .and_then(|v| v.as_array().map(<[_]>::to_vec))
        .map_err(|e| format!("workloads: {e}"))?;
    if entries.is_empty() {
        return Err("workloads array is empty".into());
    }
    let mut largest: Option<(i64, String, i64, i64)> = None;
    let mut opt_refuted = 0i64;
    let mut opt_sliced = 0i64;
    let mut opt_solves = 0i64;
    for (i, entry) in entries.iter().enumerate() {
        let name = entry
            .field("name")
            .and_then(|v| v.as_str().map(str::to_string))
            .map_err(|e| format!("workloads[{i}].name: {e}"))?;
        let top = |key: &str| -> Result<i64, String> {
            let v = entry
                .field(key)
                .and_then(|v| v.as_int())
                .map_err(|e| format!("workload `{name}`: {key}: {e}"))?;
            if v < 0 {
                return Err(format!("workload `{name}`: {key} is negative ({v})"));
            }
            Ok(v)
        };
        let events = top("events")?;
        top("windows")?;
        let mut runs = [0i64; 20];
        for (r, run_key) in ["baseline", "optimized"].into_iter().enumerate() {
            let run = entry
                .field(run_key)
                .map_err(|e| format!("workload `{name}`: {run_key}: {e}"))?;
            for (k, key) in RUN_INT_KEYS.into_iter().enumerate() {
                let v = run
                    .field(key)
                    .and_then(|v| v.as_int())
                    .map_err(|e| format!("workload `{name}`: {run_key}.{key}: {e}"))?;
                if v < 0 {
                    return Err(format!(
                        "workload `{name}`: {run_key}.{key} is negative ({v})"
                    ));
                }
                runs[r * 10 + k] = v;
            }
        }
        let [b_races, b_sat, b_unsat, b_cops, b_conf, b_ref, b_res, b_sliced, _, b_wall, o_races, o_sat, o_unsat, o_cops, o_conf, o_ref, o_res, o_sliced, o_solves, o_wall] =
            runs;
        for (what, b, o) in [
            ("races", b_races, o_races),
            ("sat", b_sat, o_sat),
            ("unsat", b_unsat, o_unsat),
            ("cops_solved", b_cops, o_cops),
        ] {
            if b != o {
                return Err(format!(
                    "workload `{name}`: baseline {what} is {b} but optimized {what} is {o} \
                     — the hot-path overhaul must not change the verdict"
                ));
            }
        }
        if b_conf != 0 || b_ref != 0 || b_res != 0 || b_sliced != 0 {
            return Err(format!(
                "workload `{name}`: the baseline run carries tier or slice activity \
                 ({b_conf}/{b_ref}/{b_res}, sliced {b_sliced}) — it must run the \
                 PR4-era pipeline"
            ));
        }
        if o_conf + o_ref + o_res != o_cops {
            return Err(format!(
                "workload `{name}`: optimized tier counters {o_conf}+{o_ref}+{o_res} do \
                 not partition cops_solved ({o_cops})"
            ));
        }
        opt_refuted += o_ref;
        opt_sliced += o_sliced;
        opt_solves += o_solves;
        if largest.as_ref().is_none_or(|(e, ..)| events > *e) {
            largest = Some((events, name, b_wall, o_wall));
        }
    }
    let (_, largest_name, b_wall, o_wall) = largest.expect("workloads array checked non-empty");
    let speedup = doc
        .field("speedup_x100")
        .and_then(|v| v.as_int())
        .map_err(|e| format!("speedup_x100: {e}"))?;
    let expected = b_wall * 100 / o_wall.max(1);
    if speedup != expected {
        return Err(format!(
            "speedup_x100 is {speedup} but the largest workload's walls \
             ({b_wall}/{o_wall}) give {expected}"
        ));
    }
    let portfolio = doc
        .field("portfolio")
        .map_err(|e| format!("portfolio: {e}"))?;
    let pfield = |key: &str| -> Result<i64, String> {
        portfolio
            .field(key)
            .and_then(|v| v.as_int())
            .map_err(|e| format!("portfolio.{key}: {e}"))
    };
    portfolio
        .field("name")
        .and_then(|v| v.as_str().map(str::to_string))
        .map_err(|e| format!("portfolio.name: {e}"))?;
    let configs = pfield("configs")?;
    let matched = pfield("matched")?;
    let fp = pfield("fingerprint")?;
    if configs < 2 {
        return Err(format!(
            "portfolio.configs is {configs}; the matrix must cover at least \
             portfolio on and off"
        ));
    }
    if matched != configs {
        return Err(format!(
            "portfolio matched {matched} of {configs} configs — reports must be \
             byte-identical across portfolio on/off and worker counts"
        ));
    }
    if fp < 0 {
        return Err(format!("portfolio.fingerprint is negative ({fp})"));
    }
    if mode == "full" {
        if speedup < PERF_SPEEDUP_FLOOR_X100 {
            return Err(format!(
                "workload `{largest_name}`: speedup_x100 is {speedup}, below the \
                 ≥{PERF_SPEEDUP_FLOOR_X100} floor (≥5x end-to-end)"
            ));
        }
        if opt_refuted == 0 {
            return Err(
                "optimized runs refuted nothing via the tiers — the screens \
                 did not screen"
                    .into(),
            );
        }
        if opt_sliced == 0 {
            return Err("optimized runs sliced nothing — the cone slicer did not run".into());
        }
        if opt_solves == 0 {
            return Err("optimized runs never reached the solver — the incremental \
                 core was never exercised"
                .into());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_perf_pipeline_emits_valid_document() {
        let json = run_perf_pipeline(
            &smoke_perf_workloads(),
            &PerfBenchOptions::default(),
            "smoke",
        );
        validate_perf_bench_json(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        assert!(json.contains("\"suite\": \"pr10\""), "{json}");
        assert!(json.contains("\"name\": \"residue_small\""), "{json}");
        assert!(json.contains("\"warmup_iters\": 1"), "{json}");
    }

    #[test]
    fn double_flag_workload_is_pure_residue() {
        // The workload's reason to exist: its payload COPs must defeat
        // both screens (two same-value justifiers blind Tier B) and land
        // in the residue, where the incremental solver refutes them.
        let w = double_flag_workload("w", 2, 3);
        let report = RaceDetector::with_config(DetectorConfig {
            tiers: true,
            ..Default::default()
        })
        .detect(&w.trace);
        assert_eq!(report.n_races(), 1, "only the head race is real");
        assert_eq!(report.stats.tier_refuted, 0, "Tier B must be blind here");
        assert!(report.stats.tier_residue >= 6, "one residue COP per block");
        assert_eq!(
            report.stats.unsat as usize, report.stats.tier_residue,
            "the solver refutes every residue COP"
        );
    }

    #[test]
    fn validator_rejects_tampered_documents() {
        let json = run_perf_pipeline(
            &smoke_perf_workloads(),
            &PerfBenchOptions::default(),
            "smoke",
        );
        let wrong_version = json.replace("\"schema_version\": 1", "\"schema_version\": 99");
        assert!(validate_perf_bench_json(&wrong_version)
            .unwrap_err()
            .contains("schema_version"));
        let wrong_suite = json.replace("\"suite\": \"pr10\"", "\"suite\": \"pr9\"");
        assert!(validate_perf_bench_json(&wrong_suite)
            .unwrap_err()
            .contains("suite"));
        assert!(validate_perf_bench_json("not json").is_err());
        assert!(validate_perf_bench_json("{}").is_err());
    }

    #[test]
    fn validator_enforces_verdicts_counters_and_full_mode_floors() {
        // Hand-built document: minimal but internally consistent.
        let good = r#"{
  "schema_version": 1, "suite": "pr10", "mode": "smoke",
  "jobs": 1, "window_size": 50, "warmup_iters": 1,
  "workloads": [
    {"name": "w", "events": 50, "windows": 1,
     "baseline": {"races": 1, "sat": 1, "unsat": 4, "cops_solved": 5,
      "tier_confirmed": 0, "tier_refuted": 0, "tier_residue": 0,
      "sliced_out": 0, "solver_solves": 5, "wall_time_us": 600},
     "optimized": {"races": 1, "sat": 1, "unsat": 4, "cops_solved": 5,
      "tier_confirmed": 1, "tier_refuted": 3, "tier_residue": 1,
      "sliced_out": 7, "solver_solves": 1, "wall_time_us": 100}}
  ],
  "speedup_x100": 600,
  "portfolio": {"name": "p", "configs": 8, "matched": 8, "fingerprint": 42}
}"#;
        validate_perf_bench_json(good).unwrap();
        // Verdict disagreement between the two runs.
        let disagreeing = good.replacen("\"unsat\": 4", "\"unsat\": 3", 1);
        assert!(validate_perf_bench_json(&disagreeing)
            .unwrap_err()
            .contains("must not change the verdict"));
        // The baseline run must not show tier or slice activity.
        let leaky = good.replacen("\"sliced_out\": 0", "\"sliced_out\": 2", 1);
        assert!(validate_perf_bench_json(&leaky)
            .unwrap_err()
            .contains("PR4-era"));
        // Optimized tier counters must partition the COP total.
        let unbalanced = good.replacen("\"tier_refuted\": 3", "\"tier_refuted\": 2", 1);
        assert!(validate_perf_bench_json(&unbalanced)
            .unwrap_err()
            .contains("partition"));
        // The recorded speedup must match the recorded walls.
        let drifted = good.replace("\"speedup_x100\": 600", "\"speedup_x100\": 700");
        assert!(validate_perf_bench_json(&drifted)
            .unwrap_err()
            .contains("speedup_x100"));
        // A warmup pass is mandatory (the no-warmup harness bug).
        let cold = good.replace("\"warmup_iters\": 1", "\"warmup_iters\": 0");
        assert!(validate_perf_bench_json(&cold)
            .unwrap_err()
            .contains("warmup_iters"));
        // Portfolio byte-identity is enforced in every mode.
        let diverged = good.replace("\"matched\": 8", "\"matched\": 7");
        assert!(validate_perf_bench_json(&diverged)
            .unwrap_err()
            .contains("byte-identical"));
        // Full mode: the speedup floor...
        let full = good.replace("\"mode\": \"smoke\"", "\"mode\": \"full\"");
        validate_perf_bench_json(&full).unwrap();
        let slow = full
            .replace("\"wall_time_us\": 600", "\"wall_time_us\": 300")
            .replace("\"speedup_x100\": 600", "\"speedup_x100\": 300");
        assert!(validate_perf_bench_json(&slow)
            .unwrap_err()
            .contains("floor"));
        // ...the screens must have refuted something...
        let no_screens = full.replacen(
            "\"tier_confirmed\": 1, \"tier_refuted\": 3, \"tier_residue\": 1",
            "\"tier_confirmed\": 1, \"tier_refuted\": 0, \"tier_residue\": 4",
            1,
        );
        assert!(validate_perf_bench_json(&no_screens)
            .unwrap_err()
            .contains("screen"));
        // ...the slicer must have sliced...
        let no_slice = full.replacen("\"sliced_out\": 7", "\"sliced_out\": 0", 1);
        assert!(validate_perf_bench_json(&no_slice)
            .unwrap_err()
            .contains("slicer"));
        // ...and the solver core must have been exercised.
        let no_solves = full.replacen("\"solver_solves\": 1", "\"solver_solves\": 0", 1);
        assert!(validate_perf_bench_json(&no_solves)
            .unwrap_err()
            .contains("incremental"));
    }
}
