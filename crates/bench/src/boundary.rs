//! Cross-window prediction benchmark: the `BENCH_pr8.json` harness mode.
//!
//! Compares `--window-mode fixed` against `--window-mode cone` (the
//! default) on *boundary-handoff* workloads: every racing pair is placed
//! astride a window boundary — the write is the last event of window `k`,
//! the conflicting read the first event of window `k+1` — with only
//! thread-private filler in between. Fixed windows never co-resident the
//! pair and report zero races; cone mode recovers every one through the
//! straddle pass, with spill residency bounded by the budget. A
//! non-straddling control workload certifies the other half of the
//! contract: where no pair straddles, the two modes produce identical
//! counts.
//!
//! ```sh
//! cargo run -p rvbench --release --bin boundary_pipeline -- --out BENCH_pr8.json
//! ```
//!
//! # Document schema (version 1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "suite": "pr8",
//!   "mode": "full",
//!   "jobs": 4,
//!   "spill_budget": 4194304,
//!   "oracle_confirmed_misses": 1,
//!   "workloads": [
//!     {"name": "boundary_handoff_large", "events": 100014,
//!      "window_size": 10000, "straddling": true,
//!      "fixed": {"races": 0, "straddle_cops": 0, "straddle_races": 0,
//!                "boundary_over_budget": 0, "spill_peak_events": 0,
//!                "undecided": 0, "wall_time_us": 901234},
//!      "cone":  {"races": 9, "straddle_cops": 9, "straddle_races": 9,
//!                "boundary_over_budget": 0, "spill_peak_events": 3,
//!                "undecided": 0, "wall_time_us": 912345}}
//!   ]
//! }
//! ```
//!
//! `oracle_confirmed_misses` counts, on the micro workload (small enough
//! for the brute-force maximal-causal-model oracle), the races cone mode
//! reports that fixed mode misses *and* the oracle independently proves —
//! the committed document must show at least one. On every workload the
//! fixed run's straddle counters must be zero (fixed windows never look
//! back) and the cone run's `spill_peak_events` must fit the byte budget.
//! Straddling workloads must show `cone.races > fixed.races` with
//! `straddle_races ≥ 1`; non-straddling ones must show every count-type
//! field equal between the two runs.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

use rvcore::{oracle_races, DetectorConfig, RaceDetector, WindowMode, SPILL_EVENT_BYTES};
use rvsim::workloads::Workload;
use rvtrace::{parse_json, RaceSignature, ThreadId, TraceBuilder, ViewExt};

/// Version of the `BENCH_pr8.json` document. Bumped on any incompatible
/// change (key renames, section shape).
pub const BOUNDARY_BENCH_SCHEMA_VERSION: u64 = 1;

/// The suite tag stamped into every document this harness emits.
pub const BOUNDARY_BENCH_SUITE: &str = "pr8";

/// Detection knobs for a boundary-bench run.
#[derive(Debug, Clone, Copy)]
pub struct BoundaryBenchOptions {
    /// Per-COP solver budget.
    pub solver_timeout: Duration,
    /// Worker threads for both runs.
    pub jobs: usize,
    /// Spill byte budget for the cone runs (`--spill-budget`).
    pub spill_budget: usize,
}

impl Default for BoundaryBenchOptions {
    fn default() -> Self {
        BoundaryBenchOptions {
            solver_timeout: Duration::from_secs(10),
            jobs: 4,
            spill_budget: DetectorConfig::default().spill_budget,
        }
    }
}

/// One benchmark entry: the workload plus the window size it is detected
/// with and whether its racing pairs straddle boundaries by construction.
#[derive(Debug)]
pub struct BoundaryWorkload {
    /// The named trace.
    pub workload: Workload,
    /// Window size both runs use (chosen so the handoff pairs land
    /// exactly astride the boundaries).
    pub window_size: usize,
    /// Whether the workload's racing pairs straddle boundaries — selects
    /// which half of the contract the validator enforces on it.
    pub straddling: bool,
}

/// Builds a boundary-handoff workload: `crossings` racing pairs, each
/// placed exactly astride a `window_size`-event boundary. Per crossing
/// `k`, thread-private filler by the main thread pads the trace so that
/// the writer's store to a fresh variable `x_k` is the *last* event of
/// window `k` and the reader's conflicting load is the *first* event of
/// window `k+1`. No synchronization orders the pair, so each crossing is
/// one real race — invisible to fixed windows, one straddle-pass race in
/// cone mode, with a spill span of a single event.
pub fn boundary_handoff_workload(name: &str, window_size: usize, crossings: usize) -> Workload {
    assert!(window_size >= 8 && crossings >= 1);
    let mut b = TraceBuilder::new();
    let main = ThreadId::MAIN;
    let writer = b.fork(main);
    let reader = b.fork(main);
    // Absorb both implicit `begin` events inside window 0, on private
    // variables, so the handoff accesses below are the threads' only
    // boundary-relevant events.
    let warm_w = b.var("warm_w");
    let warm_r = b.var("warm_r");
    b.write(writer, warm_w, 0);
    b.write(reader, warm_r, 0);
    let filler = b.var("filler");
    for k in 0..crossings {
        let x = b.var(&format!("x{k}"));
        let boundary = (k + 1) * window_size;
        while b.len() < boundary - 1 {
            b.write(main, filler, b.len() as i64);
        }
        b.write(writer, x, 1); // last event of window k
        b.read(reader, x, 1); // first event of window k+1
    }
    Workload {
        name: name.to_string(),
        trace: b.finish(),
    }
}

/// The non-straddling control: one racy pair entirely inside window 0,
/// then thread-private filler out to `windows` full windows. No
/// conflicting pair ever crosses a boundary, so fixed and cone mode must
/// produce identical counts on it.
pub fn boundary_control_workload(name: &str, window_size: usize, windows: usize) -> Workload {
    assert!(window_size >= 8 && windows >= 2);
    let mut b = TraceBuilder::new();
    let main = ThreadId::MAIN;
    let t2 = b.fork(main);
    let x = b.var("x");
    b.write(main, x, 1);
    b.write(t2, x, 2);
    let a = b.var("a");
    let c = b.var("c");
    while b.len() < windows * window_size {
        b.write(main, a, 0);
        b.write(t2, c, 0);
    }
    Workload {
        name: name.to_string(),
        trace: b.finish(),
    }
}

/// The micro handoff: small enough (≤ 18 events) for the brute-force
/// oracle, with its single racing pair astride the window-4 boundary —
/// the `oracle_confirmed_misses` arbiter.
pub fn boundary_micro_workload(name: &str) -> Workload {
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let pad = b.var("pad");
    let t1 = ThreadId::MAIN;
    let t2 = b.fork(t1);
    b.write(t1, x, 1);
    for i in 0..8i64 {
        b.write(t1, pad, i);
    }
    b.read(t2, x, 1);
    Workload {
        name: name.to_string(),
        trace: b.finish(),
    }
}

/// The smoke set: the oracle micro workload, a small handoff and the
/// non-straddling control — seconds, for CI.
pub fn smoke_boundary_workloads() -> Vec<BoundaryWorkload> {
    vec![
        BoundaryWorkload {
            workload: boundary_micro_workload("boundary_micro"),
            window_size: 4,
            straddling: true,
        },
        BoundaryWorkload {
            workload: boundary_handoff_workload("boundary_handoff_small", 1_000, 4),
            window_size: 1_000,
            straddling: true,
        },
        BoundaryWorkload {
            workload: boundary_control_workload("boundary_control", 1_000, 4),
            window_size: 1_000,
            straddling: false,
        },
    ]
}

/// The full set: the smoke workloads plus a paper-scale handoff with the
/// racing pair astride every 10K boundary.
pub fn full_boundary_workloads() -> Vec<BoundaryWorkload> {
    let mut all = smoke_boundary_workloads();
    all.push(BoundaryWorkload {
        workload: boundary_handoff_workload("boundary_handoff_large", 10_000, 10),
        window_size: 10_000,
        straddling: true,
    });
    all
}

fn us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

struct BoundaryRun {
    races: u64,
    straddle_cops: u64,
    straddle_races: u64,
    boundary_over_budget: u64,
    spill_peak_events: u64,
    undecided: u64,
    wall: Duration,
    signatures: BTreeSet<RaceSignature>,
}

fn run_once(
    entry: &BoundaryWorkload,
    opts: &BoundaryBenchOptions,
    mode: WindowMode,
) -> BoundaryRun {
    let cfg = DetectorConfig {
        window_size: entry.window_size,
        solver_timeout: opts.solver_timeout,
        parallelism: opts.jobs,
        window_mode: mode,
        spill_budget: opts.spill_budget,
        ..Default::default()
    };
    let t0 = Instant::now();
    let report = RaceDetector::with_config(cfg).detect(&entry.workload.trace);
    BoundaryRun {
        races: report.n_races() as u64,
        straddle_cops: report.stats.straddle_cops as u64,
        straddle_races: report.stats.straddle_races as u64,
        boundary_over_budget: report.stats.boundary_over_budget as u64,
        spill_peak_events: report.stats.spill_peak_events as u64,
        undecided: report.stats.undecided as u64,
        wall: t0.elapsed(),
        signatures: report.signatures().into_iter().collect(),
    }
}

fn write_run(out: &mut String, key: &str, run: &BoundaryRun) {
    let _ = write!(
        out,
        "\"{key}\": {{\"races\": {}, \"straddle_cops\": {}, \"straddle_races\": {},\n      \
         \"boundary_over_budget\": {}, \"spill_peak_events\": {}, \"undecided\": {},\n      \
         \"wall_time_us\": {}}}",
        run.races,
        run.straddle_cops,
        run.straddle_races,
        run.boundary_over_budget,
        run.spill_peak_events,
        run.undecided,
        us(run.wall),
    );
}

/// Runs each workload in both window modes and returns the versioned
/// comparison document described in the module docs. The micro workload
/// (≤ 18 events) is additionally arbitered by the brute-force oracle to
/// produce the `oracle_confirmed_misses` count.
pub fn run_boundary_pipeline(
    entries: &[BoundaryWorkload],
    opts: &BoundaryBenchOptions,
    mode: &str,
) -> String {
    let mut body = String::new();
    let mut oracle_confirmed_misses = 0u64;
    for (i, entry) in entries.iter().enumerate() {
        let fixed = run_once(entry, opts, WindowMode::Fixed);
        let cone = run_once(entry, opts, WindowMode::Cone);
        if entry.workload.trace.len() <= 18 {
            let trace = &entry.workload.trace;
            let real: BTreeSet<RaceSignature> = oracle_races(&trace.full_view(), 18)
                .into_iter()
                .map(|cop| RaceSignature::of_cop(trace, cop))
                .collect();
            oracle_confirmed_misses += cone
                .signatures
                .iter()
                .filter(|sig| real.contains(sig) && !fixed.signatures.contains(sig))
                .count() as u64;
        }
        if i > 0 {
            body.push(',');
        }
        let _ = write!(
            body,
            "\n    {{\"name\": \"{}\", \"events\": {}, \"window_size\": {}, \
             \"straddling\": {},\n     ",
            entry.workload.name,
            entry.workload.trace.len(),
            entry.window_size,
            entry.straddling,
        );
        write_run(&mut body, "fixed", &fixed);
        body.push_str(",\n     ");
        write_run(&mut body, "cone", &cone);
        body.push('}');
    }
    let mut out = String::with_capacity(body.len() + 256);
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"schema_version\": {BOUNDARY_BENCH_SCHEMA_VERSION},"
    );
    let _ = writeln!(out, "  \"suite\": \"{BOUNDARY_BENCH_SUITE}\",");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"jobs\": {},", opts.jobs);
    let _ = writeln!(out, "  \"spill_budget\": {},", opts.spill_budget);
    let _ = writeln!(
        out,
        "  \"oracle_confirmed_misses\": {oracle_confirmed_misses},"
    );
    out.push_str("  \"workloads\": [");
    out.push_str(&body);
    out.push_str("\n  ]\n}\n");
    out
}

/// Integer fields each run sub-object must carry, all non-negative.
const RUN_INT_KEYS: [&str; 7] = [
    "races",
    "straddle_cops",
    "straddle_races",
    "boundary_over_budget",
    "spill_peak_events",
    "undecided",
    "wall_time_us",
];

/// Validates a `BENCH_pr8.json` document: version/suite/mode tags, the
/// required keys as non-negative integers, zero straddle counters in
/// every `fixed` run, cone-run spill residency within the byte budget,
/// `cone.races > fixed.races` with `straddle_races ≥ 1` on every
/// straddling workload, full count equality between the runs on every
/// non-straddling workload, at least one workload of each kind, and at
/// least one oracle-confirmed fixed-mode miss. Returns a description of
/// the first violation.
pub fn validate_boundary_bench_json(json: &str) -> Result<(), String> {
    let doc = parse_json(json).map_err(|e| format!("not valid JSON: {e}"))?;
    let version = doc
        .field("schema_version")
        .and_then(|v| v.as_int())
        .map_err(|e| e.to_string())?;
    if version != BOUNDARY_BENCH_SCHEMA_VERSION as i64 {
        return Err(format!(
            "schema_version is {version}, expected {BOUNDARY_BENCH_SCHEMA_VERSION}"
        ));
    }
    let suite = doc
        .field("suite")
        .and_then(|v| v.as_str().map(str::to_string))
        .map_err(|e| e.to_string())?;
    if suite != BOUNDARY_BENCH_SUITE {
        return Err(format!(
            "suite is `{suite}`, expected `{BOUNDARY_BENCH_SUITE}`"
        ));
    }
    let mode = doc
        .field("mode")
        .and_then(|v| v.as_str().map(str::to_string))
        .map_err(|e| e.to_string())?;
    if mode != "smoke" && mode != "full" {
        return Err(format!("mode is `{mode}`, expected `smoke` or `full`"));
    }
    let jobs = doc
        .field("jobs")
        .and_then(|v| v.as_int())
        .map_err(|e| format!("jobs: {e}"))?;
    if jobs <= 0 {
        return Err(format!("jobs must be positive, got {jobs}"));
    }
    let spill_budget = doc
        .field("spill_budget")
        .and_then(|v| v.as_int())
        .map_err(|e| format!("spill_budget: {e}"))?;
    if spill_budget < 0 {
        return Err(format!("spill_budget is negative ({spill_budget})"));
    }
    let confirmed = doc
        .field("oracle_confirmed_misses")
        .and_then(|v| v.as_int())
        .map_err(|e| format!("oracle_confirmed_misses: {e}"))?;
    if confirmed < 1 {
        return Err(format!(
            "oracle_confirmed_misses is {confirmed}: no cone-mode race that fixed \
             mode misses was oracle-confirmed"
        ));
    }
    let entries = doc
        .field("workloads")
        .and_then(|v| v.as_array().map(<[_]>::to_vec))
        .map_err(|e| format!("workloads: {e}"))?;
    if entries.is_empty() {
        return Err("workloads array is empty".into());
    }
    let spill_cap = spill_budget / SPILL_EVENT_BYTES as i64;
    let (mut straddling_seen, mut control_seen) = (false, false);
    for (i, entry) in entries.iter().enumerate() {
        let name = entry
            .field("name")
            .and_then(|v| v.as_str().map(str::to_string))
            .map_err(|e| format!("workloads[{i}].name: {e}"))?;
        for key in ["events", "window_size"] {
            let v = entry
                .field(key)
                .and_then(|v| v.as_int())
                .map_err(|e| format!("workload `{name}`: {key}: {e}"))?;
            if v < 0 {
                return Err(format!("workload `{name}`: {key} is negative ({v})"));
            }
        }
        let straddling = entry
            .field("straddling")
            .and_then(|v| v.as_bool())
            .map_err(|e| format!("workload `{name}`: straddling: {e}"))?;
        let mut runs = [0i64; 14];
        for (r, run_key) in ["fixed", "cone"].into_iter().enumerate() {
            let run = entry
                .field(run_key)
                .map_err(|e| format!("workload `{name}`: {run_key}: {e}"))?;
            for (k, key) in RUN_INT_KEYS.into_iter().enumerate() {
                let v = run
                    .field(key)
                    .and_then(|v| v.as_int())
                    .map_err(|e| format!("workload `{name}`: {run_key}.{key}: {e}"))?;
                if v < 0 {
                    return Err(format!(
                        "workload `{name}`: {run_key}.{key} is negative ({v})"
                    ));
                }
                runs[r * 7 + k] = v;
            }
        }
        let [f_races, f_scops, f_sraces, f_over, f_spill, f_undec, _, c_races, c_scops, c_sraces, c_over, c_spill, c_undec, _] =
            runs;
        if f_scops != 0 || f_sraces != 0 || f_over != 0 || f_spill != 0 {
            return Err(format!(
                "workload `{name}`: the fixed run carries straddle activity \
                 ({f_scops}/{f_sraces}/{f_over}/{f_spill}) — fixed windows never look back"
            ));
        }
        if c_spill > spill_cap {
            return Err(format!(
                "workload `{name}`: cone spill_peak_events ({c_spill}) exceeds the \
                 budget cap ({spill_cap} events = {spill_budget} bytes)"
            ));
        }
        if straddling {
            straddling_seen = true;
            if c_sraces < 1 {
                return Err(format!(
                    "workload `{name}`: straddling, but the cone run attributed no \
                     race to the straddle pass"
                ));
            }
            if c_races <= f_races {
                return Err(format!(
                    "workload `{name}`: straddling, but cone races ({c_races}) do not \
                     exceed fixed races ({f_races})"
                ));
            }
        } else {
            control_seen = true;
            for (what, f, c) in [
                ("races", f_races, c_races),
                ("straddle_cops", f_scops, c_scops),
                ("straddle_races", f_sraces, c_sraces),
                ("boundary_over_budget", f_over, c_over),
                ("spill_peak_events", f_spill, c_spill),
                ("undecided", f_undec, c_undec),
            ] {
                if f != c {
                    return Err(format!(
                        "workload `{name}`: non-straddling, but fixed {what} is {f} \
                         while cone {what} is {c} — the modes must coincide"
                    ));
                }
            }
        }
    }
    if !straddling_seen {
        return Err("no straddling workload in the document".into());
    }
    if !control_seen {
        return Err("no non-straddling control workload in the document".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handoff_pairs_land_exactly_astride_boundaries() {
        let w = boundary_handoff_workload("h", 1_000, 3);
        // Each crossing k: write at (k+1)·W − 1, read at (k+1)·W.
        for k in 0..3usize {
            let boundary = (k + 1) * 1_000;
            let write = w.trace.events()[boundary - 1];
            let read = w.trace.events()[boundary];
            assert!(write.kind.is_write(), "crossing {k}");
            assert!(
                !read.kind.is_write() && read.kind.var().is_some(),
                "crossing {k}"
            );
            assert_eq!(write.kind.var(), read.kind.var(), "crossing {k}");
        }
    }

    #[test]
    fn smoke_boundary_pipeline_emits_valid_document() {
        let json = run_boundary_pipeline(
            &smoke_boundary_workloads(),
            &BoundaryBenchOptions::default(),
            "smoke",
        );
        validate_boundary_bench_json(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        assert!(json.contains("\"suite\": \"pr8\""), "{json}");
        assert!(json.contains("\"name\": \"boundary_micro\""), "{json}");
        assert!(json.contains("\"name\": \"boundary_control\""), "{json}");
    }

    #[test]
    fn validator_rejects_tampered_documents() {
        let json = run_boundary_pipeline(
            &smoke_boundary_workloads(),
            &BoundaryBenchOptions::default(),
            "smoke",
        );
        let wrong_version = json.replace("\"schema_version\": 1", "\"schema_version\": 99");
        assert!(validate_boundary_bench_json(&wrong_version)
            .unwrap_err()
            .contains("schema_version"));
        let wrong_suite = json.replace("\"suite\": \"pr8\"", "\"suite\": \"pr7\"");
        assert!(validate_boundary_bench_json(&wrong_suite)
            .unwrap_err()
            .contains("suite"));
        let no_confirmation = json.replace(
            "\"oracle_confirmed_misses\": 1",
            "\"oracle_confirmed_misses\": 0",
        );
        assert!(validate_boundary_bench_json(&no_confirmation)
            .unwrap_err()
            .contains("oracle_confirmed_misses"));
        assert!(validate_boundary_bench_json("not json").is_err());
        assert!(validate_boundary_bench_json("{}").is_err());
    }

    #[test]
    fn validator_enforces_the_mode_contract() {
        let valid = r#"{
  "schema_version": 1, "suite": "pr8", "mode": "smoke",
  "jobs": 1,
  "spill_budget": 640,
  "oracle_confirmed_misses": 1,
  "workloads": [
    {"name": "h", "events": 4000, "window_size": 1000, "straddling": true,
     "fixed": {"races": 0, "straddle_cops": 0, "straddle_races": 0,
      "boundary_over_budget": 0, "spill_peak_events": 0, "undecided": 0,
      "wall_time_us": 5},
     "cone": {"races": 3, "straddle_cops": 3, "straddle_races": 3,
      "boundary_over_budget": 0, "spill_peak_events": 1, "undecided": 0,
      "wall_time_us": 7}},
    {"name": "c", "events": 4000, "window_size": 1000, "straddling": false,
     "fixed": {"races": 1, "straddle_cops": 0, "straddle_races": 0,
      "boundary_over_budget": 0, "spill_peak_events": 0, "undecided": 0,
      "wall_time_us": 5},
     "cone": {"races": 1, "straddle_cops": 0, "straddle_races": 0,
      "boundary_over_budget": 0, "spill_peak_events": 0, "undecided": 0,
      "wall_time_us": 6}}
  ]
}"#;
        validate_boundary_bench_json(valid).unwrap();
        // A fixed run with straddle activity is rejected.
        let leaky = valid.replacen("\"straddle_cops\": 0", "\"straddle_cops\": 1", 1);
        assert!(validate_boundary_bench_json(&leaky)
            .unwrap_err()
            .contains("never look back"));
        // Spill residency above the byte budget is rejected.
        let hungry = valid.replacen("\"spill_peak_events\": 1", "\"spill_peak_events\": 11", 1);
        assert!(validate_boundary_bench_json(&hungry)
            .unwrap_err()
            .contains("budget cap"));
        // A straddling workload where cone finds nothing extra is rejected.
        let blind = valid
            .replacen(
                "\"races\": 3, \"straddle_cops\": 3",
                "\"races\": 0, \"straddle_cops\": 3",
                1,
            )
            .replacen("\"straddle_races\": 3", "\"straddle_races\": 0", 1);
        assert!(validate_boundary_bench_json(&blind).is_err());
        // A non-straddling workload where the modes disagree is rejected.
        let drifting = valid.replacen(
            "{\"races\": 1, \"straddle_cops\": 0, \"straddle_races\": 0,\n      \
             \"boundary_over_budget\": 0, \"spill_peak_events\": 0, \"undecided\": 0,\n      \
             \"wall_time_us\": 6}",
            "{\"races\": 2, \"straddle_cops\": 0, \"straddle_races\": 0,\n      \
             \"boundary_over_budget\": 0, \"spill_peak_events\": 0, \"undecided\": 0,\n      \
             \"wall_time_us\": 6}",
            1,
        );
        assert!(validate_boundary_bench_json(&drifting)
            .unwrap_err()
            .contains("must coincide"));
        // Both workload kinds must be present.
        let no_control = valid.replacen("\"straddling\": false", "\"straddling\": true", 1);
        assert!(validate_boundary_bench_json(&no_control).is_err());
    }
}
