//! A minimal micro-benchmark harness (in-tree replacement for the former
//! Criterion dev-dependency, so `cargo bench` works without registry
//! access).
//!
//! Each bench target builds a [`Runner`], registers closures with
//! [`Runner::bench`], and calls [`Runner::finish`]. The runner
//! auto-calibrates the iteration count until a sample takes at least the
//! target duration, prints one line per benchmark, and returns the raw
//! measurements for targets that post-process them (e.g. the parallel
//! scaling bench computes speedups).
//!
//! Command-line arguments that do not start with `-` are substring filters
//! on benchmark names, mirroring `cargo bench -- <filter>`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One completed measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name (group/label).
    pub name: String,
    /// Iterations in the final timed sample.
    pub iters: u64,
    /// Untimed warmup iterations run before the first sample (recorded in
    /// the bench JSON so a report shows the medians excluded cold-start
    /// jitter).
    pub warmup_iters: u64,
    /// Wall time of the final sample.
    pub total: Duration,
    /// `total / iters`.
    pub per_iter: Duration,
}

/// Collects and prints measurements for one bench target.
#[derive(Debug)]
pub struct Runner {
    filters: Vec<String>,
    target: Duration,
    results: Vec<Measurement>,
}

impl Runner {
    /// A runner for the named suite, reading name filters from `argv`.
    pub fn from_env(suite: &str) -> Runner {
        let filters: Vec<String> = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        println!("== {suite} ==");
        Runner {
            filters,
            target: Duration::from_millis(300),
            results: Vec::new(),
        }
    }

    /// Sets the minimum wall time of the final timed sample (default
    /// 300ms). Lower it for expensive end-to-end benches.
    pub fn sample_target(&mut self, target: Duration) {
        self.target = target;
    }

    /// Runs `f` repeatedly until the sample reaches the target duration and
    /// records the per-iteration time. Skipped (silently) if name filters
    /// are active and none matches.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        if !self.filters.is_empty() && !self.filters.iter().any(|p| name.contains(p)) {
            return;
        }
        // Warmup pass: untimed iterations until a tenth of the sample
        // target has elapsed (at least one), so cold-start jitter —
        // allocator growth, cache warming, lazy statics — lands here
        // instead of in the first calibration sample.
        let warmup_target = self.target / 10;
        let mut warmup_iters: u64 = 0;
        let warmup_start = Instant::now();
        loop {
            black_box(f());
            warmup_iters += 1;
            if warmup_start.elapsed() >= warmup_target || warmup_iters >= 1 << 20 {
                break;
            }
        }
        let mut iters: u64 = 1;
        let (total, iters) = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.target || iters >= 1 << 24 {
                break (elapsed, iters);
            }
            let scale = (self.target.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).ceil() as u64;
            iters = iters.saturating_mul(scale.clamp(2, 16)).min(1 << 24);
        };
        let per_iter = total / u32::try_from(iters).expect("iters capped at 2^24");
        println!(
            "  {name:<44} {:>12}/iter  ({iters} iters)",
            fmt_duration(per_iter)
        );
        self.results.push(Measurement {
            name: name.to_string(),
            iters,
            warmup_iters,
            total,
            per_iter,
        });
    }

    /// Prints the footer and hands back the measurements.
    pub fn finish(self) -> Vec<Measurement> {
        println!("{} benchmark(s) run", self.results.len());
        self.results
    }
}

/// Renders a duration with a unit fitting its magnitude.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 10_000_000_000 {
        format!("{:.1}s", d.as_secs_f64())
    } else if ns >= 10_000_000 {
        format!("{:.1}ms", d.as_secs_f64() * 1e3)
    } else if ns >= 10_000 {
        format!("{:.1}µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrates_and_records() {
        let mut r = Runner {
            filters: vec![],
            target: Duration::from_millis(5),
            results: vec![],
        };
        let mut count = 0u64;
        r.bench("counting", || {
            count += 1;
            count
        });
        let results = r.finish();
        assert_eq!(results.len(), 1);
        assert!(results[0].iters >= 1);
        assert!(results[0].warmup_iters >= 1, "warmup ran before sampling");
        assert!(results[0].total >= Duration::from_millis(5) || results[0].iters == 1 << 24);
    }

    #[test]
    fn filters_skip_nonmatching() {
        let mut r = Runner {
            filters: vec!["yes".into()],
            target: Duration::from_millis(1),
            results: vec![],
        };
        r.bench("no/match", || 1);
        r.bench("a/yes/b", || 1);
        assert_eq!(r.finish().len(), 1);
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500ns");
        assert!(fmt_duration(Duration::from_micros(50)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(50)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(20)).ends_with('s'));
    }
}
