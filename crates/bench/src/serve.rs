//! Multi-tenant session benchmark: the `BENCH_pr7.json` harness mode.
//!
//! Runs a mix of tenants concurrently through one [`rvcore::SessionManager`]
//! — the same engine `rvserved` multiplexes socket sessions onto — and
//! checks the daemon determinism contract end to end: every tenant's
//! report must match a solo [`rvcore::RaceDetector`] run over the same
//! trace with the same knobs, a tenant killed mid-stream must be torn
//! down without touching its neighbors, and the cross-session diff count
//! must be zero.
//!
//! ```sh
//! cargo run -p rvbench --release --bin serve_pipeline -- --out BENCH_pr7.json
//! ```
//!
//! # Document schema (version 1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "suite": "pr7",
//!   "mode": "full",
//!   "workers": 2,
//!   "sessions": [
//!     {"name": "mix_a", "config": "default", "events": 2114, "races": 1,
//!      "shed_windows": 0, "solo_match": true, "wall_time_us": 153002}
//!   ],
//!   "killed_session": {"fed_bytes": 31744, "torn_down": true},
//!   "cross_session_diffs": 0
//! }
//! ```
//!
//! `solo_match` records whether that tenant's deterministic report summary
//! was byte-identical to its solo run; `cross_session_diffs` counts the
//! tenants where it was not. Both are hard invariants — the validator
//! rejects any document where a tenant drifted or the killed tenant was
//! not torn down. `"full"` documents must additionally multiplex: strictly
//! more sessions than workers.

use std::fmt::Write as _;
use std::sync::Barrier;
use std::time::{Duration, Instant};

use rvcore::{DetectorConfig, RaceDetector, SessionConfig, SessionManager};
use rvsim::workloads::Workload;
use rvtrace::{parse_json, ThreadId, TraceBuilder};

/// Version of the `BENCH_pr7.json` document. Bumped on any incompatible
/// change (key renames, section shape).
pub const SERVE_BENCH_SCHEMA_VERSION: u64 = 1;

/// The suite tag stamped into every document this harness emits.
pub const SERVE_BENCH_SUITE: &str = "pr7";

/// The per-tenant detector variants the harness cycles through, in order.
/// Each tenant's solo run uses the same variant, so `solo_match` holds
/// regardless of which knobs the tenant picked.
const CONFIG_TAGS: [&str; 3] = ["default", "no_tiers", "no_slice"];

/// Knobs for a serve-bench run.
#[derive(Debug, Clone, Copy)]
pub struct ServeBenchOptions {
    /// Solver workers shared by all sessions (the daemon's `--jobs`).
    pub workers: usize,
    /// Per-COP solver budget.
    pub solver_timeout: Duration,
    /// Detection window size for every tenant.
    pub window_size: usize,
}

impl Default for ServeBenchOptions {
    fn default() -> Self {
        ServeBenchOptions {
            workers: 2,
            solver_timeout: Duration::from_secs(10),
            window_size: 300,
        }
    }
}

/// Builds a tenant-mix workload: the per-session traffic shape the daemon
/// sees in practice, with every COP class represented. A sync-free racy
/// pair on `h` at the head (a real race, found in window 0), then `rounds`
/// rounds across three threads, each mixing a lock-protected shared
/// counter (quick-check territory), a flag handoff whose payload COP
/// survives the quick check but is entailment-refuted through the forced
/// flag read (Tier B / solver territory), and race-free thread-local
/// filler. Variables are distinct per round so every round contributes
/// fresh COPs and windows stay busy.
pub fn tenant_mix_workload(name: &str, rounds: usize) -> Workload {
    assert!(rounds >= 1);
    let mut b = TraceBuilder::new();
    let main = ThreadId::MAIN;
    let t2 = b.fork(main);
    let t3 = b.fork(main);
    let lock = b.new_lock("m");

    // The head: one real race, confirmable by a sync-preserving reordering.
    let h = b.var("h");
    b.write(main, h, 1);
    b.write(t2, h, 2);

    for k in 0..rounds {
        // Lock-protected shared counter: the quick check kills these COPs.
        let g = b.var(&format!("g{k}"));
        b.acquire(main, lock);
        b.write(main, g, 1);
        b.release(main, lock);
        b.acquire(t2, lock);
        b.read(t2, g, 1);
        b.release(t2, lock);
        // Flag handoff: the payload COP survives the quick check but the
        // branch forces the flag read, entailing the handoff order.
        let y = b.var(&format!("y{k}"));
        let f = b.var(&format!("f{k}"));
        b.write(t2, y, 1);
        b.acquire(t2, lock);
        b.write(t2, f, 1);
        b.release(t2, lock);
        b.acquire(t3, lock);
        b.read(t3, f, 1);
        b.release(t3, lock);
        b.branch(t3);
        b.read(t3, y, 1);
        // Race-free thread-local filler.
        let a = b.var(&format!("a{k}"));
        let c = b.var(&format!("c{k}"));
        b.write(main, a, k as i64);
        b.write(t3, c, k as i64);
    }
    Workload {
        name: name.to_string(),
        trace: b.finish(),
    }
}

/// The smallest tenant set: three small tenants, for smoke runs and the
/// schema test.
pub fn smoke_serve_workloads() -> Vec<Workload> {
    vec![
        tenant_mix_workload("mix_a", 30),
        tenant_mix_workload("mix_b", 45),
        tenant_mix_workload("mix_c", 60),
    ]
}

/// The full tenant set: six tenants of mixed size, enough to oversubscribe
/// the default two-worker pool.
pub fn full_serve_workloads() -> Vec<Workload> {
    vec![
        tenant_mix_workload("mix_a", 30),
        tenant_mix_workload("mix_b", 45),
        tenant_mix_workload("mix_c", 60),
        tenant_mix_workload("mix_d", 120),
        tenant_mix_workload("mix_e", 200),
        tenant_mix_workload("mix_f", 300),
    ]
}

fn us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// The detector variant tenant `i` runs with, mirrored by its solo run.
fn tenant_config(i: usize, opts: &ServeBenchOptions) -> (&'static str, DetectorConfig) {
    let mut cfg = DetectorConfig {
        window_size: opts.window_size,
        solver_timeout: opts.solver_timeout,
        parallelism: 1,
        ..Default::default()
    };
    let tag = CONFIG_TAGS[i % CONFIG_TAGS.len()];
    match tag {
        "no_tiers" => cfg.tiers = false,
        "no_slice" => cfg.slice = false,
        _ => {}
    }
    (tag, cfg)
}

struct SessionRun {
    name: String,
    config: &'static str,
    events: u64,
    races: u64,
    shed_windows: u64,
    solo_match: bool,
    wall: Duration,
}

/// Runs every workload as a concurrent tenant on one shared manager (plus
/// one tenant killed mid-stream) and returns the versioned document
/// described in the module docs. `mode` is stamped into the document;
/// `"full"` additionally promises more sessions than workers.
pub fn run_serve_pipeline(workloads: &[Workload], opts: &ServeBenchOptions, mode: &str) -> String {
    assert!(opts.workers >= 1);
    // Solo references first: the same trace, the same knobs, no manager.
    let solo: Vec<String> = workloads
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let (_, cfg) = tenant_config(i, opts);
            RaceDetector::with_config(cfg)
                .detect(&w.trace)
                .deterministic_summary()
        })
        .collect();

    let manager = SessionManager::new(opts.workers);
    let start = Barrier::new(workloads.len() + 1);
    let kill_bytes = rvtrace::to_ndjson(&workloads[0].trace);
    let kill_fed = kill_bytes.len() / 2;
    let mut torn_down = false;
    let mut sessions: Vec<SessionRun> = Vec::with_capacity(workloads.len());

    std::thread::scope(|scope| {
        let handles: Vec<_> = workloads
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let (tag, cfg) = tenant_config(i, opts);
                let manager = &manager;
                let start = &start;
                scope.spawn(move || {
                    let bytes = rvtrace::to_ndjson(&w.trace);
                    let mut session = manager.open_session(SessionConfig {
                        detector: cfg,
                        ..Default::default()
                    });
                    start.wait();
                    let t0 = Instant::now();
                    for chunk in bytes.as_bytes().chunks(127) {
                        session.feed(chunk).expect("tenant trace is well-formed");
                    }
                    let outcome = session.finish().expect("tenant session completes");
                    (tag, outcome, t0.elapsed())
                })
            })
            .collect();
        // The killed tenant: half a trace, then an abort — concurrent with
        // everyone else.
        let victim = {
            let manager = &manager;
            let start = &start;
            let bytes = &kill_bytes;
            scope.spawn(move || {
                let mut session = manager.open_session(SessionConfig::default());
                start.wait();
                let _ = session.feed(&bytes.as_bytes()[..kill_fed]);
                session.abort("bench kill").to_string()
            })
        };
        for (i, h) in handles.into_iter().enumerate() {
            let (tag, outcome, wall) = h.join().expect("tenant thread survives");
            sessions.push(SessionRun {
                name: workloads[i].name.clone(),
                config: tag,
                events: outcome.trace.len() as u64,
                races: outcome.report.n_races() as u64,
                shed_windows: outcome.shed_windows as u64,
                solo_match: outcome.report.deterministic_summary() == solo[i],
                wall,
            });
        }
        torn_down = victim
            .join()
            .expect("victim thread survives")
            .contains("torn down");
    });

    let diffs = sessions.iter().filter(|s| !s.solo_match).count();
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": {SERVE_BENCH_SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"suite\": \"{SERVE_BENCH_SUITE}\",");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"workers\": {},", opts.workers);
    out.push_str("  \"sessions\": [");
    for (i, s) in sessions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"config\": \"{}\", \"events\": {}, \"races\": {},\n     \
             \"shed_windows\": {}, \"solo_match\": {}, \"wall_time_us\": {}}}",
            s.name,
            s.config,
            s.events,
            s.races,
            s.shed_windows,
            s.solo_match,
            us(s.wall),
        );
    }
    out.push_str("\n  ],\n");
    let _ = writeln!(
        out,
        "  \"killed_session\": {{\"fed_bytes\": {kill_fed}, \"torn_down\": {torn_down}}},"
    );
    let _ = writeln!(out, "  \"cross_session_diffs\": {diffs}");
    out.push_str("}\n");
    out
}

/// Validates a `BENCH_pr7.json` document: version/suite/mode tags, a
/// positive worker count, per-session key completeness with non-negative
/// integers and a known config tag, every session matching its solo run,
/// `cross_session_diffs` both zero and consistent with the per-session
/// flags, the killed tenant torn down, and — for `"full"` documents —
/// strictly more sessions than workers (the pool was actually
/// multiplexed). Returns a description of the first violation.
pub fn validate_serve_bench_json(json: &str) -> Result<(), String> {
    let doc = parse_json(json).map_err(|e| format!("not valid JSON: {e}"))?;
    let version = doc
        .field("schema_version")
        .and_then(|v| v.as_int())
        .map_err(|e| e.to_string())?;
    if version != SERVE_BENCH_SCHEMA_VERSION as i64 {
        return Err(format!(
            "schema_version is {version}, expected {SERVE_BENCH_SCHEMA_VERSION}"
        ));
    }
    let suite = doc
        .field("suite")
        .and_then(|v| v.as_str().map(str::to_string))
        .map_err(|e| e.to_string())?;
    if suite != SERVE_BENCH_SUITE {
        return Err(format!(
            "suite is `{suite}`, expected `{SERVE_BENCH_SUITE}`"
        ));
    }
    let mode = doc
        .field("mode")
        .and_then(|v| v.as_str().map(str::to_string))
        .map_err(|e| e.to_string())?;
    if mode != "smoke" && mode != "full" {
        return Err(format!("mode is `{mode}`, expected `smoke` or `full`"));
    }
    let workers = doc
        .field("workers")
        .and_then(|v| v.as_int())
        .map_err(|e| format!("workers: {e}"))?;
    if workers <= 0 {
        return Err(format!("workers must be positive, got {workers}"));
    }
    let entries = doc
        .field("sessions")
        .and_then(|v| v.as_array().map(<[_]>::to_vec))
        .map_err(|e| format!("sessions: {e}"))?;
    if entries.is_empty() {
        return Err("sessions array is empty".into());
    }
    for (i, entry) in entries.iter().enumerate() {
        let name = entry
            .field("name")
            .and_then(|v| v.as_str().map(str::to_string))
            .map_err(|e| format!("sessions[{i}].name: {e}"))?;
        let config = entry
            .field("config")
            .and_then(|v| v.as_str().map(str::to_string))
            .map_err(|e| format!("session `{name}`: config: {e}"))?;
        if !CONFIG_TAGS.contains(&config.as_str()) {
            return Err(format!(
                "session `{name}`: unknown config tag `{config}` (one of: {})",
                CONFIG_TAGS.join(", ")
            ));
        }
        for key in ["events", "races", "shed_windows", "wall_time_us"] {
            let v = entry
                .field(key)
                .and_then(|v| v.as_int())
                .map_err(|e| format!("session `{name}`: {key}: {e}"))?;
            if v < 0 {
                return Err(format!("session `{name}`: {key} is negative ({v})"));
            }
        }
        let solo_match = entry
            .field("solo_match")
            .and_then(|v| v.as_bool())
            .map_err(|e| format!("session `{name}`: solo_match: {e}"))?;
        if !solo_match {
            return Err(format!(
                "session `{name}`: solo_match is false — the session's report \
                 drifted from the standalone run"
            ));
        }
    }
    let killed = doc
        .field("killed_session")
        .map_err(|e| format!("killed_session: {e}"))?;
    let fed = killed
        .field("fed_bytes")
        .and_then(|v| v.as_int())
        .map_err(|e| format!("killed_session.fed_bytes: {e}"))?;
    if fed <= 0 {
        return Err(format!(
            "killed_session.fed_bytes must be positive, got {fed}"
        ));
    }
    let torn_down = killed
        .field("torn_down")
        .and_then(|v| v.as_bool())
        .map_err(|e| format!("killed_session.torn_down: {e}"))?;
    if !torn_down {
        return Err(
            "killed_session.torn_down is false — a tenant killed mid-stream \
             must be torn down"
                .into(),
        );
    }
    let diffs = doc
        .field("cross_session_diffs")
        .and_then(|v| v.as_int())
        .map_err(|e| format!("cross_session_diffs: {e}"))?;
    if diffs != 0 {
        return Err(format!(
            "cross_session_diffs is {diffs} — multi-tenant runs must not \
             drift from solo"
        ));
    }
    if mode == "full" && entries.len() as i64 <= workers {
        return Err(format!(
            "full documents must multiplex: {} session(s) over {workers} \
             worker(s)",
            entries.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_serve_pipeline_emits_valid_document() {
        let json = run_serve_pipeline(
            &smoke_serve_workloads(),
            &ServeBenchOptions::default(),
            "smoke",
        );
        validate_serve_bench_json(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        assert!(json.contains("\"suite\": \"pr7\""), "{json}");
        assert!(json.contains("\"name\": \"mix_a\""), "{json}");
        assert!(json.contains("\"cross_session_diffs\": 0"), "{json}");
    }

    #[test]
    fn validator_rejects_tampered_documents() {
        let json = run_serve_pipeline(
            &smoke_serve_workloads(),
            &ServeBenchOptions::default(),
            "smoke",
        );
        for (needle, replacement, expect) in [
            (
                "\"schema_version\": 1",
                "\"schema_version\": 9",
                "schema_version",
            ),
            ("\"suite\": \"pr7\"", "\"suite\": \"pr6\"", "suite"),
            ("\"mode\": \"smoke\"", "\"mode\": \"casual\"", "mode"),
            // A drifted session is a determinism violation.
            (
                "\"solo_match\": true",
                "\"solo_match\": false",
                "drifted from the standalone run",
            ),
            // So is a non-zero diff count.
            (
                "\"cross_session_diffs\": 0",
                "\"cross_session_diffs\": 1",
                "must not drift from solo",
            ),
            // And an un-torn-down kill is an isolation violation.
            (
                "\"torn_down\": true",
                "\"torn_down\": false",
                "must be torn down",
            ),
        ] {
            let tampered = json.replacen(needle, replacement, 1);
            assert_ne!(tampered, json, "tamper needle `{needle}` did not hit");
            let err = validate_serve_bench_json(&tampered)
                .expect_err(&format!("tampering `{needle}` must be rejected"));
            assert!(
                err.contains(expect),
                "error for `{needle}` should mention `{expect}`, got: {err}"
            );
        }
        assert!(validate_serve_bench_json("not json").is_err());
        assert!(validate_serve_bench_json("{}").is_err());
    }

    #[test]
    fn full_mode_requires_multiplexing() {
        let json = run_serve_pipeline(
            &smoke_serve_workloads(),
            &ServeBenchOptions {
                workers: 8,
                ..Default::default()
            },
            "full",
        );
        // 3 sessions over 8 workers: nothing was multiplexed.
        let err = validate_serve_bench_json(&json).unwrap_err();
        assert!(err.contains("must multiplex"), "{err}");
        // The same document is fine as a smoke run.
        let smoke = json.replace("\"mode\": \"full\"", "\"mode\": \"smoke\"");
        validate_serve_bench_json(&smoke).unwrap();
    }
}
