//! # rvbench — the evaluation harness
//!
//! Regenerates the paper's Table 1 and the ablation/scalability studies.
//!
//! * `cargo run -p rvbench --release --bin table1` — the full table
//!   (trace metrics, QC, races per detector, times);
//! * `cargo run -p rvbench --release --bin pipeline` — the end-to-end
//!   pipeline benchmark (see [`pipeline`]), emitting `BENCH_pr3.json`;
//! * `cargo run -p rvbench --release --bin stream_pipeline` — the
//!   whole-file vs streaming-ingestion comparison (see [`stream`]),
//!   emitting `BENCH_pr4.json`;
//! * `cargo run -p rvbench --release --bin slice_pipeline` — the
//!   relevance-slicing on/off comparison (see [`slice`]), emitting
//!   `BENCH_pr5.json`;
//! * `cargo run -p rvbench --release --bin tier_pipeline` — the tiered
//!   cascade on/off comparison (see [`tier`]), emitting `BENCH_pr6.json`;
//! * `cargo run -p rvbench --release --bin serve_pipeline` — concurrent
//!   tenants on a shared session manager vs their solo runs (see
//!   [`serve`]), emitting `BENCH_pr7.json`;
//! * `cargo run -p rvbench --release --bin boundary_pipeline` — fixed vs
//!   cone window mode on boundary-handoff workloads (see [`boundary`]),
//!   emitting `BENCH_pr8.json`;
//! * `cargo run -p rvbench --release --bin kind_pipeline` — the
//!   multi-class violation benchmark (race/deadlock/atomicity under the
//!   `--kind` axis, see [`kind`]), emitting `BENCH_pr9.json`;
//! * `cargo run -p rvbench --release --bin perf_pipeline` — the hot-path
//!   overhaul vs the PR4-era baseline pipeline, plus the portfolio
//!   byte-identity matrix (see [`perf`]), emitting `BENCH_pr10.json`;
//! * `cargo run -p rvbench --release --bin emit_trace` — serializes a
//!   named workload trace (JSON or NDJSON) for feeding `rvpredict`;
//! * `cargo bench -p rvbench` — micro-benchmarks (see [`micro`]) for the
//!   solver, the four detectors, the windowing sweep, the design-choice
//!   ablations and the parallel-driver scaling curve.

#![warn(missing_docs)]

pub mod boundary;
pub mod kind;
pub mod micro;
pub mod perf;
pub mod pipeline;
pub mod serve;
pub mod slice;
pub mod stream;
pub mod tier;

use std::collections::BTreeSet;
use std::time::Duration;

use rvbaselines::{CpDetector, HbDetector, RaceDetectorTool, SaidDetector};
use rvcore::{enumerate_cops, DetectorConfig, RaceDetector};
use rvsim::workloads::Workload;
use rvtrace::{RaceSignature, TraceStats, ViewExt};

/// One Table 1 row: trace metrics, QC, per-detector race counts and times.
#[derive(Debug)]
pub struct TableRow {
    /// Benchmark name.
    pub name: String,
    /// Trace metric columns (3–7).
    pub stats: TraceStats,
    /// Column 8: distinct signatures passing the hybrid quick check.
    pub qc: usize,
    /// Columns 9–12: races (distinct signatures) per technique.
    pub races: [usize; 4],
    /// Columns 13–16: detection times per technique.
    pub times: [Duration; 4],
    /// Soundness-inclusion violations (must be 0: RV ⊇ Said/CP/HB, CP ⊇ HB).
    pub inclusion_violations: usize,
}

impl TableRow {
    /// Formats the row in Table 1's column order.
    pub fn format(&self) -> String {
        format!(
            "{:<14} {:>5} {:>8} {:>8} {:>7} {:>7} {:>5} | {:>4} {:>4} {:>4} {:>4} | {:>9} {:>9} {:>9} {:>9}",
            self.name,
            self.stats.threads,
            self.stats.events,
            self.stats.reads_writes,
            self.stats.syncs,
            self.stats.branches,
            self.qc,
            self.races[0],
            self.races[1],
            self.races[2],
            self.races[3],
            fmt_dur(self.times[0]),
            fmt_dur(self.times[1]),
            fmt_dur(self.times[2]),
            fmt_dur(self.times[3]),
        )
    }
}

/// Table 1's header line, matching [`TableRow::format`].
pub fn table_header() -> String {
    format!(
        "{:<14} {:>5} {:>8} {:>8} {:>7} {:>7} {:>5} | {:>4} {:>4} {:>4} {:>4} | {:>9} {:>9} {:>9} {:>9}",
        "Program", "#Thrd", "#Event", "#RW", "#Sync", "#Br", "QC", "RV", "Said", "CP", "HB",
        "t(RV)", "t(Said)", "t(CP)", "t(HB)"
    )
}

fn fmt_dur(d: Duration) -> String {
    if d.as_secs() >= 10 {
        format!("{:.0}s", d.as_secs_f64())
    } else if d.as_millis() >= 100 {
        format!("{:.1}s", d.as_secs_f64())
    } else if d.as_millis() >= 1 {
        format!("{}ms", d.as_millis())
    } else {
        format!("{}µs", d.as_micros())
    }
}

/// Budget knobs for a harness run.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Per-COP solver budget for the SMT-based detectors.
    pub solver_timeout: Duration,
    /// Window size for every technique (paper §5: 10K).
    pub window_size: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            solver_timeout: Duration::from_secs(5),
            window_size: 10_000,
        }
    }
}

/// Runs all four detectors on one workload and assembles the Table 1 row.
pub fn run_row(w: &Workload, cfg: &HarnessConfig) -> TableRow {
    let mut qc = 0;
    for view in w.trace.windows(cfg.window_size) {
        qc += enumerate_cops(&view, true, 10).qc_signatures;
    }

    let rv_cfg = DetectorConfig {
        window_size: cfg.window_size,
        solver_timeout: cfg.solver_timeout,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let rv_report = RaceDetector::with_config(rv_cfg).detect(&w.trace);
    let t_rv = t0.elapsed();
    let rv: BTreeSet<RaceSignature> = rv_report.signatures().into_iter().collect();

    let mut said_det = SaidDetector::default();
    said_det.config.window_size = cfg.window_size;
    said_det.config.solver_timeout = cfg.solver_timeout;
    let t0 = std::time::Instant::now();
    let said = said_det.detect_races(&w.trace);
    let t_said = t0.elapsed();

    let cp_det = CpDetector {
        window_size: cfg.window_size,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let cp = cp_det.detect_races(&w.trace);
    let t_cp = t0.elapsed();

    let hb_det = HbDetector {
        window_size: cfg.window_size,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let hb = hb_det.detect_races(&w.trace);
    let t_hb = t0.elapsed();

    let inclusion_violations = said.signatures.difference(&rv).count()
        + cp.signatures.difference(&rv).count()
        + hb.signatures.difference(&rv).count()
        + hb.signatures.difference(&cp.signatures).count();

    TableRow {
        name: w.name.clone(),
        stats: w.trace.stats(),
        qc,
        races: [rv.len(), said.n_races(), cp.n_races(), hb.n_races()],
        times: [t_rv, t_said, t_cp, t_hb],
        inclusion_violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvsim::workloads;

    #[test]
    fn row_for_figure1_matches_expectations() {
        let w = workloads::figures::figure1();
        let row = run_row(&w, &HarnessConfig::default());
        assert_eq!(row.races, [1, 0, 0, 0]);
        assert_eq!(row.inclusion_violations, 0);
        assert!(row.qc >= 1);
        let s = row.format();
        assert!(s.contains("example"));
    }

    #[test]
    fn header_and_row_align() {
        let w = workloads::figures::figure1();
        let row = run_row(&w, &HarnessConfig::default());
        // Same number of column separators.
        assert_eq!(
            table_header().matches('|').count(),
            row.format().matches('|').count()
        );
    }
}
