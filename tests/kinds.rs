//! The `--kind` axis, certified end to end: differential testing of the
//! predictive deadlock and atomicity detectors (and the race detector over
//! the extended rwlock/channel vocabulary) against the brute-force
//! maximal-causal-model oracle, witness re-validation, and byte-identity
//! of every kind's report across worker counts, ingestion modes, the
//! slice/tier ablation flags, and the daemon.
//!
//! The random traces come from a structured generator that schedules
//! per-thread scripts — nested write/read-mode critical sections, shared
//! variables, channel send/recv — through an explicit lock-state machine,
//! so every recorded interleaving is consistent by construction and the
//! scripts' lock nesting produces real inversion candidates.

use std::collections::BTreeSet;
use std::io::Write as _;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

use rvpredict::{
    check_consistency, check_schedule, oracle_atomicity, oracle_deadlocks, oracle_races,
    AtomicityDetector, DeadlockDetector, DetectorConfig, RaceDetector, RaceSignature, ThreadId,
    Trace, TraceBuilder, ViewExt,
};
use rvsim::rng::SmallRng;

// ------------------------------------------------------------ generator

const N_LOCKS: usize = 2;
const N_VARS: usize = 2;
/// The oracle enumerates every reachable interleaving; past ~22 events the
/// state space stops being exhaustively checkable in test time.
const MAX_ORACLE_EVENTS: usize = 22;

/// One step of a thread script. `Acq`/`Rel` pairs are balanced and
/// non-reentrant by construction of [`gen_script`].
#[derive(Debug, Clone, Copy)]
enum Op {
    Write(usize),
    Read(usize),
    /// Acquire lock `.0`; `.1` selects read (shared) mode.
    Acq(usize, bool),
    /// Release the innermost open critical section.
    Rel,
    Send,
    Recv,
}

/// Generates one thread's script: a flat run of accesses and channel ops
/// with properly nested critical sections (depth ≤ 2, no reentrancy).
fn gen_script(rng: &mut SmallRng, open: &mut Vec<usize>, depth: usize, out: &mut Vec<Op>) {
    for _ in 0..rng.gen_range(1..4usize) {
        match rng.gen_range(0..10u32) {
            0..=2 => out.push(Op::Write(rng.gen_range(0..N_VARS as u32) as usize)),
            3..=4 => out.push(Op::Read(rng.gen_range(0..N_VARS as u32) as usize)),
            5..=7 if depth < 2 => {
                let l = rng.gen_range(0..N_LOCKS as u32) as usize;
                if open.contains(&l) {
                    continue;
                }
                let read_mode = rng.gen_range(0..4u32) == 0;
                out.push(Op::Acq(l, read_mode));
                open.push(l);
                gen_script(rng, open, depth + 1, out);
                open.pop();
                out.push(Op::Rel);
            }
            8 => out.push(Op::Send),
            9 => out.push(Op::Recv),
            _ => {}
        }
    }
}

/// Schedules the scripts through an explicit rwlock state machine: a step
/// is runnable only when its acquire would not violate mutual exclusion
/// and its recv has a sent message to consume, so the recorded trace is a
/// real interleaving. If every remaining thread is blocked — the scripts
/// deadlocked for real — the rest is dropped; the prefix recorded so far
/// is still consistent.
fn schedule(rng: &mut SmallRng, scripts: &[Vec<Op>]) -> Trace {
    #[derive(Default)]
    struct LockState {
        writer: Option<usize>,
        readers: Vec<usize>,
    }
    let mut b = TraceBuilder::new();
    let locks: Vec<_> = (0..N_LOCKS).map(|i| b.new_lock(&format!("l{i}"))).collect();
    let vars: Vec<_> = (0..N_VARS).map(|i| b.var(&format!("x{i}"))).collect();
    let chan = b.new_chan("c");
    let threads: Vec<_> = scripts.iter().map(|_| b.fork(ThreadId::MAIN)).collect();

    let mut pc = vec![0usize; scripts.len()];
    let mut held: Vec<Vec<(usize, bool)>> = vec![Vec::new(); scripts.len()];
    let mut lock_state: Vec<LockState> = (0..N_LOCKS).map(|_| LockState::default()).collect();
    let mut values = vec![0i64; N_VARS];
    let mut pending_sends: Vec<rvpredict::EventId> = Vec::new();
    let mut last: Option<usize> = None;

    loop {
        let runnable: Vec<usize> = (0..scripts.len())
            .filter(|&ti| {
                let Some(op) = scripts[ti].get(pc[ti]) else {
                    return false;
                };
                match *op {
                    Op::Acq(l, false) => {
                        lock_state[l].writer.is_none() && lock_state[l].readers.is_empty()
                    }
                    Op::Acq(l, true) => lock_state[l].writer.is_none(),
                    Op::Recv => !pending_sends.is_empty(),
                    _ => true,
                }
            })
            .collect();
        if runnable.is_empty() {
            break;
        }
        // A sticky (bursty) scheduler: mostly keep running the current
        // thread. A uniform pick would interleave first acquisitions so
        // often that inverted nestings nearly always truncate at the
        // circular wait instead of being recorded in full — leaving the
        // deadlock *predictor* nothing to predict from.
        let ti = match last {
            Some(t) if runnable.contains(&t) && rng.gen_range(0..5u32) < 4 => t,
            _ => runnable[rng.gen_range(0..runnable.len())],
        };
        last = Some(ti);
        let t = threads[ti];
        match scripts[ti][pc[ti]] {
            Op::Write(v) => {
                values[v] += 1;
                b.write(t, vars[v], values[v]);
            }
            Op::Read(v) => {
                b.read(t, vars[v], values[v]);
            }
            Op::Acq(l, false) => {
                lock_state[l].writer = Some(ti);
                held[ti].push((l, false));
                b.acquire(t, locks[l]);
            }
            Op::Acq(l, true) => {
                lock_state[l].readers.push(ti);
                held[ti].push((l, true));
                b.acquire_read(t, locks[l]);
            }
            Op::Rel => {
                let (l, read_mode) = held[ti].pop().expect("balanced by construction");
                if read_mode {
                    lock_state[l].readers.retain(|&r| r != ti);
                    b.release_read(t, locks[l]);
                } else {
                    lock_state[l].writer = None;
                    b.release(t, locks[l]);
                }
            }
            Op::Send => {
                pending_sends.push(b.send(t, chan));
            }
            Op::Recv => {
                let s = pending_sends.remove(0);
                b.recv(t, chan, Some(s));
            }
        }
        pc[ti] += 1;
    }
    b.finish()
}

fn gen_trace(rng: &mut SmallRng) -> Trace {
    let n_threads = rng.gen_range(2..4usize);
    // Half the traces come from lock-heavy scripts — each thread nests two
    // critical sections in a random order — so inversion candidates (and
    // real predictable deadlocks, whenever the scheduler happens to
    // serialize both nestings) show up often enough to exercise the
    // deadlock detector, not just refutations.
    let lock_heavy = rng.gen_range(0..2u32) == 0;
    let scripts: Vec<Vec<Op>> = (0..n_threads)
        .map(|_| {
            if lock_heavy {
                let outer = rng.gen_range(0..N_LOCKS as u32) as usize;
                let inner = (outer + 1) % N_LOCKS;
                let mut s = vec![Op::Acq(outer, false)];
                if rng.gen_range(0..2u32) == 0 {
                    s.push(Op::Write(rng.gen_range(0..N_VARS as u32) as usize));
                }
                s.push(Op::Acq(inner, rng.gen_range(0..6u32) == 0));
                s.push(Op::Rel);
                s.push(Op::Rel);
                s
            } else {
                let mut s = Vec::new();
                gen_script(rng, &mut Vec::new(), 0, &mut s);
                s
            }
        })
        .collect();
    schedule(rng, &scripts)
}

fn cases_from_env(default: usize) -> usize {
    // `PROPTEST_CASES` kept its name when the suite moved off proptest.
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

// ----------------------------------------------------- oracle arbitering

/// The certifying differential: on every generated trace, each kind's
/// detector must agree with the brute-force oracle — race signatures
/// exactly, deadlock cycle signatures exactly, atomicity verdicts on
/// existence — every candidate decided, and every reported witness must
/// re-validate against the §2 axioms.
#[test]
fn kind_detectors_match_oracle_on_random_traces() {
    let mut rng = SmallRng::seed_from_u64(0x4B1D);
    let cases = cases_from_env(48);
    let mut checked = 0;
    let (mut races_seen, mut deadlocks_seen, mut atomicity_seen) = (0usize, 0usize, 0usize);
    for _attempt in 0..cases * 30 {
        if checked == cases {
            break;
        }
        let trace = gen_trace(&mut rng);
        if trace.len() < 6 || trace.len() > MAX_ORACLE_EVENTS {
            continue;
        }
        checked += 1;
        assert!(
            check_consistency(&trace).is_empty(),
            "generator must only record consistent traces: {:?}",
            trace.events()
        );
        let view = trace.full_view();

        // Race: exact signature agreement over the extended vocabulary.
        let race = RaceDetector::with_config(DetectorConfig::default()).detect(&trace);
        assert_eq!(
            race.stats.undecided,
            0,
            "small traces must decide fully: {:?} on trace {:?}",
            race.stats.undecided_by_reason,
            trace.events()
        );
        assert_eq!(race.stats.witness_failures, 0);
        for r in &race.races {
            assert_eq!(
                check_schedule(&view, &r.schedule),
                Ok(()),
                "race witness must re-validate on trace {:?}",
                trace.events()
            );
        }
        let got: BTreeSet<RaceSignature> = race.signatures().into_iter().collect();
        let real: BTreeSet<RaceSignature> = oracle_races(&view, MAX_ORACLE_EVENTS)
            .into_iter()
            .map(|cop| RaceSignature::of_cop(&trace, cop))
            .collect();
        assert_eq!(
            got,
            real,
            "race detector vs oracle disagree on trace {:?}",
            trace.events()
        );
        races_seen += real.len();

        // Deadlock: exact cycle-signature agreement, witnesses re-checked.
        let dl = DeadlockDetector {
            config: DetectorConfig::default(),
        }
        .detect(&trace);
        assert_eq!(dl.unknown, 0, "small traces must decide fully");
        for cycle in &dl.cycles {
            assert_eq!(
                check_schedule(&view, &cycle.schedule),
                Ok(()),
                "deadlock witness must re-validate on trace {:?}",
                trace.events()
            );
        }
        let got: BTreeSet<Vec<_>> = dl.cycles.iter().map(|c| c.locks.clone()).collect();
        let real = oracle_deadlocks(&view, MAX_ORACLE_EVENTS);
        assert_eq!(
            got,
            real,
            "deadlock detector vs oracle disagree on trace {:?}",
            trace.events()
        );
        deadlocks_seen += real.len();

        // Atomicity: verdict agreement on existence, witnesses re-checked.
        let at = AtomicityDetector {
            config: DetectorConfig::default(),
        }
        .detect(&trace);
        assert_eq!(at.unknown, 0, "small traces must decide fully");
        for v in &at.violations {
            assert_eq!(
                check_schedule(&view, &v.schedule),
                Ok(()),
                "atomicity witness must re-validate on trace {:?}",
                trace.events()
            );
        }
        let real = oracle_atomicity(&view, MAX_ORACLE_EVENTS);
        assert_eq!(
            !at.violations.is_empty(),
            !real.is_empty(),
            "atomicity detector vs oracle disagree on trace {:?}",
            trace.events()
        );
        atomicity_seen += real.len();
    }
    assert_eq!(checked, cases, "not enough small generated traces");
    assert!(races_seen > 0, "the generator never produced a race");
    assert!(
        deadlocks_seen > 0,
        "the generator never produced a deadlock"
    );
    assert!(
        atomicity_seen > 0,
        "the generator never produced an atomicity violation"
    );
}

/// RwLock generator semantics, pinned: concurrent read-mode critical
/// sections never race with each other, write-vs-read mode pairs do —
/// checked through both the full detector and the oracle.
#[test]
fn rwlock_read_mode_is_shared_write_mode_is_exclusive() {
    // Two readers and one write-mode writer over the same variable: the
    // write/read-mode exclusion serializes every conflicting pair.
    let mut b = TraceBuilder::new();
    let l = b.new_lock("l");
    let x = b.var("x");
    let t1 = b.fork(ThreadId::MAIN);
    let t2 = b.fork(ThreadId::MAIN);
    b.acquire(ThreadId::MAIN, l);
    b.write(ThreadId::MAIN, x, 1);
    b.release(ThreadId::MAIN, l);
    for t in [t1, t2] {
        b.acquire_read(t, l);
        b.read(t, x, 1);
        b.release_read(t, l);
    }
    let guarded = b.finish();
    assert!(check_consistency(&guarded).is_empty());
    let report = RaceDetector::with_config(DetectorConfig::default()).detect(&guarded);
    assert_eq!(report.n_races(), 0, "write mode excludes read mode");
    assert!(oracle_races(&guarded.full_view(), MAX_ORACLE_EVENTS).is_empty());

    // The writer drops to read mode: two read-mode sections may overlap,
    // so the write/read pair is a predictable race — and the oracle
    // confirms it.
    let mut b = TraceBuilder::new();
    let l = b.new_lock("l");
    let x = b.var("x");
    let t = b.fork(ThreadId::MAIN);
    b.acquire_read(ThreadId::MAIN, l);
    b.write(ThreadId::MAIN, x, 1);
    b.release_read(ThreadId::MAIN, l);
    b.acquire_read(t, l);
    b.read(t, x, 1);
    b.release_read(t, l);
    let shared = b.finish();
    assert!(check_consistency(&shared).is_empty());
    let report = RaceDetector::with_config(DetectorConfig::default()).detect(&shared);
    assert_eq!(report.n_races(), 1, "read mode is shared, the pair races");
    assert_eq!(
        oracle_races(&shared.full_view(), MAX_ORACLE_EVENTS).len(),
        1
    );
}

// -------------------------------------------------------- byte identity

fn cli() -> &'static str {
    env!("CARGO_BIN_EXE_rvpredict")
}

fn served() -> &'static str {
    env!("CARGO_BIN_EXE_rvserved")
}

fn dir() -> PathBuf {
    let dir = std::env::temp_dir().join("rvpredict-kinds");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One trace carrying all three violation classes: a lock inversion
/// (deadlock), an unprotected read-modify-write interleaving (atomicity),
/// and a bare write/write pair (race) — so every `--kind` prints a
/// non-trivial report.
fn all_kinds_trace() -> Trace {
    let mut b = TraceBuilder::new();
    let main = ThreadId::MAIN;
    let la = b.new_lock("la");
    let lb = b.new_lock("lb");
    let t1 = b.fork(main);
    let t2 = b.fork(main);
    for (t, (first, second)) in [(t1, (la, lb)), (t2, (lb, la))] {
        b.acquire(t, first);
        b.acquire(t, second);
        b.release(t, second);
        b.release(t, first);
    }
    let x = b.var("x");
    b.read(t1, x, 0);
    b.write(t1, x, 1);
    b.read(t2, x, 1);
    b.write(t2, x, 2);
    let y = b.var("y");
    b.write(t1, y, 1);
    b.write(t2, y, 2);
    b.finish()
}

/// Writes the shared fixture once in the given format (`json` for the
/// whole-file parser, `ndjson` for the streamed one) and returns its path.
fn fixture_path(format: &str) -> String {
    let path = dir().join(format!("kinds-{}.{format}", std::process::id()));
    if !path.exists() {
        let trace = all_kinds_trace();
        let serialized = match format {
            "ndjson" => rvpredict::to_ndjson(&trace),
            _ => rvpredict::to_json(&trace),
        };
        std::fs::write(&path, serialized).unwrap();
    }
    path.to_str().unwrap().to_string()
}

/// Drops the run-dependent parts of stdout (the `window times:` line and
/// the `, solver …` wall-clock suffix of the race summary; the deadlock
/// and atomicity renderings carry no timing by design).
fn stripped_stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .filter(|l| !l.trim_start().starts_with("window times:"))
        .map(|l| match l.find(", solver ") {
            Some(i) => l[..i].to_string(),
            None => l.to_string(),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn run(args: &[&str]) -> Output {
    Command::new(cli()).args(args).output().expect("cli runs")
}

/// Every kind's report is byte-identical (modulo wall clock) across
/// worker counts, whole-file vs streamed ingestion, and the `--no-slice`
/// / `--no-tiers` ablations — the determinism contract extended to the
/// whole axis.
#[test]
fn kind_reports_are_identical_across_jobs_stream_and_ablations() {
    let json_path = fixture_path("json");
    let ndjson_path = fixture_path("ndjson");
    for kind in ["race", "deadlock", "atomicity", "all"] {
        let mut baseline: Option<(Option<i32>, String)> = None;
        for extra in [
            &[][..],
            &["--stream"][..],
            &["--no-slice"][..],
            &["--no-tiers"][..],
        ] {
            for jobs in ["1", "2", "4", "8"] {
                let mut args = vec!["--kind", kind, "--witnesses", "--jobs", jobs];
                args.extend(extra);
                args.push(if extra.contains(&"--stream") {
                    &ndjson_path
                } else {
                    &json_path
                });
                let out = run(&args);
                let got = (out.status.code(), stripped_stdout(&out));
                match &baseline {
                    None => {
                        assert_eq!(
                            got.0,
                            Some(1),
                            "the fixture carries every violation class; stderr: {}",
                            String::from_utf8_lossy(&out.stderr)
                        );
                        baseline = Some(got);
                    }
                    Some(b) => assert_eq!(
                        &got, b,
                        "--kind {kind} diverged at jobs={jobs} extra={extra:?}"
                    ),
                }
            }
        }
        let (_, stdout) = baseline.unwrap();
        match kind {
            "race" => assert!(stdout.contains("race(s)"), "{stdout}"),
            "deadlock" => assert!(stdout.contains("deadlock:"), "{stdout}"),
            "atomicity" => assert!(stdout.contains("atomicity:"), "{stdout}"),
            _ => {
                // `all` composes every section in a fixed order.
                assert!(stdout.contains("race(s)"), "{stdout}");
                assert!(stdout.contains("deadlock:"), "{stdout}");
                assert!(stdout.contains("atomicity:"), "{stdout}");
            }
        }
    }
}

/// Launches the daemon on a test-unique socket and waits until it accepts
/// connections.
fn spawn_daemon(tag: &str, extra: &[&str]) -> (Child, String) {
    let sock = dir().join(format!("{tag}-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    let sock = sock.to_str().unwrap().to_string();
    let child = Command::new(served())
        .args(["--socket", &sock])
        .args(extra)
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if UnixStream::connect(&sock).is_ok() {
            break;
        }
        assert!(Instant::now() < deadline, "daemon never bound {sock}");
        std::thread::sleep(Duration::from_millis(10));
    }
    (child, sock)
}

/// Every kind relays through the daemon byte-identical (modulo wall
/// clock) to the standalone streamed CLI run, with the same exit code.
#[test]
fn kind_reports_relay_identically_through_daemon() {
    let path = fixture_path("ndjson");
    // One accept slot per kind plus the readiness probe.
    let (daemon, sock) = spawn_daemon("kinds", &["--once", "5"]);
    for kind in ["race", "deadlock", "atomicity", "all"] {
        let solo = run(&["--kind", kind, "--witnesses", "--stream", &path]);
        let conn = run(&["--kind", kind, "--witnesses", "--connect", &sock, &path]);
        assert_eq!(
            conn.status.code(),
            solo.status.code(),
            "--kind {kind} exit code drifted; stderr: {}",
            String::from_utf8_lossy(&conn.stderr)
        );
        assert_eq!(
            stripped_stdout(&conn),
            stripped_stdout(&solo),
            "--kind {kind} stdout drifted through the daemon"
        );
    }
    let out = daemon.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(0), "--once daemon exits 0");
}

/// An unknown `kind` in a raw `SessionRequest` frame is rejected by the
/// daemon with a composed error response (exit 2), not a crash or a
/// silent default.
#[test]
fn daemon_rejects_unknown_kind_in_session_request() {
    // One accept slot for the request plus the readiness probe.
    let (daemon, sock) = spawn_daemon("badkind", &["--once", "2"]);
    let mut s = UnixStream::connect(&sock).unwrap();
    rvpredict::write_frame(&mut s, br#"{"kind": "livelock"}"#).unwrap();
    s.flush().unwrap();
    let resp = rvpredict::read_frame(&mut s)
        .expect("daemon responds to a malformed request")
        .expect("a response frame, not EOF");
    let resp =
        rvpredict::driver::SessionResponse::from_json(std::str::from_utf8(&resp).unwrap()).unwrap();
    assert_eq!(resp.exit, 2, "unknown kind is a usage error: {resp:?}");
    assert!(resp.stderr.contains("kind"), "{resp:?}");
    drop(s);
    let out = daemon.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(0));
}
