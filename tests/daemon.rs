//! Socket-level tests for the `rvserved` daemon and the `rvpredict
//! --connect` client: the multi-tenant determinism gate (each session's
//! relayed output byte-identical to the standalone CLI, under concurrent
//! co-tenants including fault-injected ones), budget degradation through
//! the `--timeout-ms` path, teardown isolation (killed and idle clients),
//! and the daemon's exit-code contract.
//!
//! Comparisons use the same wall-clock stripping as the rest of the
//! equivalence suites: the `window times:` line and the `, solver …`
//! summary suffix are run-dependent; everything else must match byte for
//! byte.

use std::io::Write as _;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

use rvpredict::{write_frame, ThreadId, Trace, TraceBuilder};

fn cli() -> &'static str {
    env!("CARGO_BIN_EXE_rvpredict")
}

fn served() -> &'static str {
    env!("CARGO_BIN_EXE_rvserved")
}

fn dir() -> PathBuf {
    let dir = std::env::temp_dir().join("rvpredict-daemon");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A five-window trace (window size 300): one racy COP in window 0, then
/// race-free two-thread filler.
fn multi_window_trace() -> Trace {
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let t2 = b.fork(ThreadId::MAIN);
    b.write(ThreadId::MAIN, x, 1);
    b.write(t2, x, 2);
    let a = b.var("a");
    let c = b.var("c");
    for i in 0..700i64 {
        b.write(ThreadId::MAIN, a, i);
        b.write(t2, c, i);
    }
    b.finish()
}

/// Writes the shared NDJSON trace once and returns its path.
fn trace_path(name: &str) -> String {
    let path = dir().join(name);
    if !path.exists() {
        std::fs::write(&path, rvpredict::to_ndjson(&multi_window_trace())).unwrap();
    }
    path.to_str().unwrap().to_string()
}

/// Launches the daemon on a test-unique socket and waits until it accepts
/// connections. Returns the child and the socket path.
fn spawn_daemon(tag: &str, extra: &[&str]) -> (Child, String) {
    let sock = dir().join(format!("{tag}-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    let sock = sock.to_str().unwrap().to_string();
    let child = Command::new(served())
        .args(["--socket", &sock])
        .args(extra)
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if UnixStream::connect(&sock).is_ok() {
            // Probe connections count against --once; tests budget for it.
            break;
        }
        assert!(Instant::now() < deadline, "daemon never bound {sock}");
        std::thread::sleep(Duration::from_millis(10));
    }
    (child, sock)
}

/// Drops the run-dependent parts of stdout.
fn stripped_stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .filter(|l| !l.trim_start().starts_with("window times:"))
        .map(|l| match l.find(", solver ") {
            Some(i) => l[..i].to_string(),
            None => l.to_string(),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn run(args: &[&str]) -> Output {
    Command::new(cli()).args(args).output().expect("cli runs")
}

/// The daemon's stderr after exit, with its own log lines (`rvserved:`)
/// split out.
fn finish_daemon(child: Child) -> (i32, String) {
    let out = child.wait_with_output().unwrap();
    (
        out.status.code().expect("no signal"),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// The headline gate: three concurrent clients — plain, `--no-tiers`, and
/// a fault-injected co-tenant — each relay output byte-identical (modulo
/// wall clock) to their standalone `--stream` runs, and the daemon exits
/// 0 after `--once 3`.
#[test]
fn concurrent_clients_match_standalone_cli() {
    let path = trace_path("daemon-equiv.ndjson");
    let (daemon, sock) = spawn_daemon("equiv", &["--once", "4", "--jobs", "3"]);
    // The probe connection used up one accept; account for it with an
    // extra --once slot above.
    let variants: Vec<Vec<&str>> = vec![
        vec![],
        vec!["--no-tiers"],
        vec!["--inject-fault", "0:0:panic"],
    ];
    let handles: Vec<_> = variants
        .into_iter()
        .map(|extra| {
            let path = path.clone();
            let sock = sock.clone();
            std::thread::spawn(move || {
                let mut solo_args = vec!["--window", "300", "--stream"];
                solo_args.extend(&extra);
                solo_args.push(&path);
                let solo = run(&solo_args);
                let mut conn_args = vec!["--window", "300", "--connect", &sock];
                conn_args.extend(&extra);
                conn_args.push(&path);
                let conn = run(&conn_args);
                (extra, solo, conn)
            })
        })
        .collect();
    for h in handles {
        let (extra, solo, conn) = h.join().unwrap();
        assert_eq!(
            conn.status.code(),
            solo.status.code(),
            "exit code drifted for {extra:?}"
        );
        assert_eq!(
            stripped_stdout(&conn),
            stripped_stdout(&solo),
            "stdout drifted for {extra:?}"
        );
        // The degradation note must relay too (panic noise stays in the
        // process that panicked, so only the `note:` lines are compared).
        let note = |out: &Output| -> Vec<String> {
            String::from_utf8_lossy(&out.stderr)
                .lines()
                .filter(|l| l.starts_with("note: no races"))
                .map(str::to_string)
                .collect()
        };
        assert_eq!(
            note(&conn),
            note(&solo),
            "stderr note drifted for {extra:?}"
        );
    }
    let (code, _log) = finish_daemon(daemon);
    assert_eq!(code, 0, "--once daemon exits 0");
}

/// `--timeout-ms 0` is deterministic (the deadline is always expired), so
/// the daemon run must match the standalone run byte for byte: every COP
/// undecided, exit 3.
#[test]
fn timeout_budget_degrades_identically_through_daemon() {
    let path = trace_path("daemon-timeout.ndjson");
    let (daemon, sock) = spawn_daemon("timeout", &["--once", "2"]);
    let solo = run(&["--window", "300", "--stream", "--timeout-ms", "0", &path]);
    let conn = run(&[
        "--window",
        "300",
        "--connect",
        &sock,
        "--timeout-ms",
        "0",
        &path,
    ]);
    assert_eq!(solo.status.code(), Some(3), "budget exhausts: degraded");
    assert_eq!(conn.status.code(), Some(3));
    assert_eq!(stripped_stdout(&conn), stripped_stdout(&solo));
    assert!(
        String::from_utf8_lossy(&conn.stderr).contains("race freedom is not established"),
        "degradation note relays"
    );
    let (code, _) = finish_daemon(daemon);
    assert_eq!(code, 0);
}

/// A client killed mid-stream (frames stop, connection drops) tears down
/// its session — logged as a deterministic record — while a concurrent
/// neighbor still matches the standalone CLI, and the daemon exits 0.
#[test]
fn killed_client_leaves_neighbor_untouched() {
    let path = trace_path("daemon-kill.ndjson");
    let (daemon, sock) = spawn_daemon("kill", &["--once", "3"]);
    // The victim: request header, half the trace, then a dropped socket.
    let victim = {
        let sock = sock.clone();
        let bytes = std::fs::read(&path).unwrap();
        std::thread::spawn(move || {
            let mut s = UnixStream::connect(&sock).unwrap();
            write_frame(&mut s, br#"{"window": 300}"#).unwrap();
            write_frame(&mut s, &bytes[..bytes.len() / 2]).unwrap();
            s.flush().unwrap();
            // Give the daemon time to ingest before the disconnect.
            std::thread::sleep(Duration::from_millis(100));
        })
    };
    let solo = run(&["--window", "300", "--stream", &path]);
    let conn = run(&["--window", "300", "--connect", &sock, &path]);
    victim.join().unwrap();
    assert_eq!(conn.status.code(), solo.status.code());
    assert_eq!(stripped_stdout(&conn), stripped_stdout(&solo));
    let (code, log) = finish_daemon(daemon);
    assert_eq!(code, 0, "a dead client is not a daemon failure");
    assert!(
        log.contains("torn down: client disconnected mid-stream"),
        "teardown record logged: {log}"
    );
}

/// A session that goes idle mid-stream is torn down after `--idle-ms`:
/// the client gets an error response (exit 2), the teardown is logged,
/// and the daemon survives to exit 0.
#[test]
fn idle_session_is_torn_down() {
    let (daemon, sock) = spawn_daemon("idle", &["--once", "2", "--idle-ms", "150"]);
    let mut s = UnixStream::connect(&sock).unwrap();
    write_frame(&mut s, br#"{"window": 300}"#).unwrap();
    s.flush().unwrap();
    // Send nothing further; the daemon must cut us off.
    let resp = rvpredict::read_frame(&mut s)
        .expect("daemon responds before dropping an idle session")
        .expect("a response frame, not EOF");
    let resp =
        rvpredict::driver::SessionResponse::from_json(std::str::from_utf8(&resp).unwrap()).unwrap();
    assert_eq!(resp.exit, 2);
    assert!(resp.stderr.contains("idle timeout"), "{resp:?}");
    drop(s);
    let (code, log) = finish_daemon(daemon);
    assert_eq!(code, 0);
    assert!(log.contains("torn down: idle timeout"), "{log}");
}

/// A trace parse error comes back composed against the *client's* file
/// name: stderr is byte-identical to the standalone CLI's, exit 2.
#[test]
fn parse_errors_relay_with_local_path() {
    let bad = dir().join("daemon-bad.ndjson");
    std::fs::write(&bad, "{\"events\": [nope").unwrap();
    let bad = bad.to_str().unwrap();
    let (daemon, sock) = spawn_daemon("badtrace", &["--once", "2"]);
    let solo = run(&["--stream", bad]);
    let conn = run(&["--connect", &sock, bad]);
    assert_eq!(solo.status.code(), Some(2));
    assert_eq!(conn.status.code(), Some(2));
    assert_eq!(
        String::from_utf8_lossy(&conn.stderr),
        String::from_utf8_lossy(&solo.stderr),
        "parse diagnostics must match byte for byte"
    );
    let (code, _) = finish_daemon(daemon);
    assert_eq!(code, 0);
}

/// `--connect` usage errors: non-rv detectors and `--demo` are rejected
/// client-side, and a dead socket is a connection error — all exit 2.
#[test]
fn connect_usage_errors() {
    let path = trace_path("daemon-usage.ndjson");
    let out = run(&["--detector", "hb", "--connect", "/nonexistent.sock", &path]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("only the rv detector"));
    let out = run(&["--connect", "/nonexistent.sock", "--demo"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["--connect", "/nonexistent.sock", &path]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot connect"));
}

/// The daemon itself: `--socket` is required (exit 2), an unbindable path
/// is exit 2, and a stale socket file is replaced on startup.
#[test]
fn daemon_exit_code_contract() {
    let out = Command::new(served()).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "--socket is required");
    let out = Command::new(served())
        .args(["--socket", "/nonexistent-dir/rv.sock"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "unbindable socket");
    // Stale socket replacement: bind, kill, rebind on the same path.
    let (daemon, sock) = spawn_daemon("stale", &["--once", "1"]);
    drop(finish_daemon(daemon));
    assert!(
        std::fs::metadata(&sock).is_ok(),
        "socket file survives the first daemon"
    );
    let (daemon2, _) = spawn_daemon("stale", &["--once", "1"]);
    drop(finish_daemon(daemon2));
}

/// The count-type slice of a metrics document: everything before the
/// `timings_us` section (wall clocks and gauges are run-shape).
fn count_type_prefix(doc: &str) -> &str {
    let cut = doc
        .find("  \"timings_us\": {")
        .unwrap_or_else(|| panic!("no timings_us section in {doc}"));
    &doc[..cut]
}

/// The per-tenant metrics export gate: a `--connect --metrics` client
/// receives its session's registry in the response and writes it locally,
/// with the count-type sections byte-identical to a standalone
/// `--stream --metrics` run of the same trace; the relayed document also
/// carries the daemon-side `session.*` gauges the solo run never records.
#[test]
fn connect_metrics_match_standalone_cli() {
    let trace = trace_path("metrics.ndjson");
    let (daemon, sock) = spawn_daemon("metrics", &["--once", "2"]);
    let solo_path = dir().join(format!("solo-metrics-{}.json", std::process::id()));
    let conn_path = dir().join(format!("conn-metrics-{}.json", std::process::id()));
    let solo_path = solo_path.to_str().unwrap();
    let conn_path = conn_path.to_str().unwrap();

    let solo = run(&["--stream", "--metrics", solo_path, &trace]);
    let conn = run(&["--connect", &sock, "--metrics", conn_path, &trace]);
    assert_eq!(conn.status.code(), solo.status.code());
    assert_eq!(stripped_stdout(&conn), stripped_stdout(&solo));

    let solo_doc = std::fs::read_to_string(solo_path).unwrap();
    let conn_doc = std::fs::read_to_string(conn_path).unwrap();
    assert_eq!(
        count_type_prefix(&conn_doc),
        count_type_prefix(&solo_doc),
        "relayed count-type metrics must match the solo CLI"
    );
    assert!(
        conn_doc.contains("\"session.opened\": 1"),
        "daemon session gauges ride along in the gauge section: {conn_doc}"
    );
    assert!(
        !solo_doc.contains("\"session.opened\""),
        "solo runs have no daemon session: {solo_doc}"
    );

    let (code, stderr) = finish_daemon(daemon);
    assert_eq!(code, 0, "daemon exits clean: {stderr}");
}
