//! End-to-end reproduction of the paper's worked examples (Figures 1/2/4/5
//! and the §4 array-indexing example), exercising the full stack: mini
//! language → interpreter → trace → all four detectors.

use rvpredict::{
    check_consistency, check_schedule, CpDetector, HbDetector, MaximalDetector, RaceDetector,
    RaceDetectorTool, SaidDetector, ViewExt,
};
use rvsim::workloads::figures;

/// Figure 1: `(3,10)` on `x` is a race; `(4,8)` on `y` and `(12,15)` on `z`
/// are not. Only the maximal technique detects it (paper §1).
#[test]
fn figure1_only_maximal_detects() {
    let w = figures::figure1();
    assert!(check_consistency(&w.trace).is_empty());
    let rv = MaximalDetector::default().detect_races(&w.trace);
    let said = SaidDetector::default().detect_races(&w.trace);
    let cp = CpDetector::default().detect_races(&w.trace);
    let hb = HbDetector::default().detect_races(&w.trace);
    assert_eq!(rv.n_races(), 1, "RV detects (3,10)");
    assert_eq!(
        said.n_races(),
        0,
        "Said misses (3,10): line 10 could only read x=1"
    );
    assert_eq!(
        cp.n_races(),
        0,
        "CP misses (3,10): the regions conflict on y"
    );
    assert_eq!(
        hb.n_races(),
        0,
        "HB misses (3,10): the lock edge orders them"
    );
}

/// The Figure 1 race is on `x` specifically, with a validated witness that
/// reorders t2's critical section before t1's (the paper's trace
/// 1-6-7-8'-9-2-3-10).
#[test]
fn figure1_witness_is_schedulable() {
    let w = figures::figure1();
    let report = RaceDetector::new().detect(&w.trace);
    assert_eq!(report.n_races(), 1);
    let race = &report.races[0];
    let var = w.trace.event(race.cop.first).kind.var().unwrap();
    assert_eq!(w.trace.var_name(var), Some("x"));
    // The witness replays through the structural checker.
    let view = w.trace.full_view();
    assert_eq!(check_schedule(&view, &race.schedule), Ok(()));
    // And ends with the racing pair adjacent.
    let n = race.schedule.0.len();
    assert_eq!(race.schedule.0[n - 2], race.cop.first);
    assert_eq!(race.schedule.0[n - 1], race.cop.second);
}

/// Figure 2: `(1,4)` is a race in case ① (plain read) but not in case ②
/// (the read feeds a loop condition). The two traces differ only in a
/// branch event.
#[test]
fn figure2_branch_event_differentiates() {
    let read = figures::figure2_read();
    let looped = figures::figure2_loop();

    let rv = MaximalDetector::default();
    assert_eq!(
        rv.detect_races(&read.trace).n_races(),
        1,
        "case ①: (1,4) races"
    );
    assert_eq!(
        rv.detect_races(&looped.trace).n_races(),
        0,
        "case ②: control-dependent"
    );

    // No other sound technique separates case ① from the HB-ordered view.
    for tool in [
        Box::new(SaidDetector::default()) as Box<dyn RaceDetectorTool>,
        Box::new(CpDetector::default()),
        Box::new(HbDetector::default()),
    ] {
        assert_eq!(
            tool.detect_races(&read.trace).n_races(),
            0,
            "{} should miss (1,4) in case ①",
            tool.name()
        );
    }
}

/// §4's array-indexing example: `(2,7)` on `a[0]` is not a race because the
/// implicit branch at `a[x]` pins the index read.
#[test]
fn array_index_not_a_race() {
    let w = figures::array_index();
    assert_eq!(w.trace.stats().branches, 1, "one implicit branch");
    let report = RaceDetector::new().detect(&w.trace);
    let racy_vars: Vec<_> = report
        .races
        .iter()
        .filter_map(|r| w.trace.event(r.cop.first).kind.var())
        .filter_map(|v| w.trace.var_name(v))
        .collect();
    assert!(
        !racy_vars.contains(&"a[0]"),
        "(2,7) must not be reported: {racy_vars:?}"
    );
}

/// Figure 5's constraint groups exist and have the expected composition for
/// the Figure 4 trace.
#[test]
fn figure5_constraint_shape() {
    use rvpredict::{encode, Cop, EncoderOptions};
    let w = figures::figure1();
    let view = w.trace.full_view();
    // (3,10) = the write of x and the read of x.
    let write_x = view
        .ids()
        .find(|&e| {
            view.event(e).kind.is_write()
                && w.trace.var_name(view.event(e).kind.var().unwrap()) == Some("x")
        })
        .unwrap();
    let read_x = view
        .ids()
        .find(|&e| {
            view.event(e).kind.is_read()
                && w.trace.var_name(view.event(e).kind.var().unwrap()) == Some("x")
        })
        .unwrap();
    // Figure 5 describes the *full* window encoding; slicing off.
    let full = EncoderOptions {
        slice: false,
        ..Default::default()
    };
    let enc = encode(&view, Cop::new(write_x, read_x), full);
    let d = enc.describe();
    assert!(d.contains("Φ_mhb"), "{d}");
    // MHB: program order + fork/begin + end/join.
    assert!(enc.n_mhb >= 15, "{d}");
    // One lock with two regions → one mutual-exclusion disjunction.
    assert_eq!(enc.n_lock, 1, "{d}");
    // (3,10) has no branch before it in either thread: no cf constraints
    // (the paper: "its control-flow condition is empty").
    assert!(enc.required_branches.is_empty(), "{d}");
    // The default (sliced) encoding keeps the same groups over the cone
    // only: both accesses sit before the join tail, so it must be smaller.
    let sliced = encode(&view, Cop::new(write_x, read_x), EncoderOptions::default());
    let ds = sliced.describe();
    assert!(sliced.cone_events < sliced.window_events, "{ds}");
    assert!(sliced.n_mhb < enc.n_mhb, "{ds}");
    assert_eq!(sliced.n_lock, 1, "the held lock survives slicing: {ds}");
    assert!(sliced.required_branches.is_empty(), "{ds}");
}
