//! Cone-of-influence edge cases for the relevance-slicing layer: fork/join
//! edges that cross the cone boundary, wait/notify links, lock spans only
//! partially inside the cone, and reads whose matching writes lie outside
//! the MHB prefix. Each case also cross-checks the sliced verdict against
//! the full-window encoding.

use rvpredict::{
    encode, Budget, Cop, EncoderOptions, EventKind, FormulaBuilder, LockId, SmtResult, Solver,
    ThreadId, Trace, TraceBuilder, ViewExt, WindowSkeleton,
};

fn solve(fb: &FormulaBuilder) -> SmtResult {
    Solver::new(fb).solve(&Budget::UNLIMITED)
}

/// Sliced and full-window encodings of `cop` must agree on satisfiability.
fn assert_verdicts_match(trace: &Trace, cop: Cop) -> SmtResult {
    let view = trace.full_view();
    let sliced = encode(&view, cop, EncoderOptions::default());
    let full = encode(
        &view,
        cop,
        EncoderOptions {
            slice: false,
            ..Default::default()
        },
    );
    let vs = solve(&sliced.fb);
    assert_eq!(vs, solve(&full.fb), "sliced verdict diverged for {cop:?}");
    vs
}

/// Fork edges into the cone are kept; join edges whose join event lies
/// beyond the cone cut are dropped, without dragging the tail in.
#[test]
fn fork_kept_join_beyond_cut_dropped() {
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let y = b.var("y");
    let t1 = ThreadId::MAIN;
    let t2 = b.fork(t1);
    let t3 = b.fork(t1);
    let a = b.write(t1, x, 1);
    let w2 = b.write(t2, x, 2);
    let w3 = b.write(t3, y, 1);
    b.join(t1, t2);
    b.join(t1, t3);
    b.write(t1, y, 2);
    let tr = b.finish();
    let view = tr.full_view();
    let cop = Cop::new(a, w2);

    let skel = WindowSkeleton::new(&view);
    let cone = skel.cone(&[cop], true);
    // Both fork edges precede the accesses; the joins (and everything after
    // them) are beyond the cut.
    let kept_forks = cone
        .edges()
        .iter()
        .filter(|(src, _)| matches!(view.event(*src).kind, EventKind::Fork { .. }))
        .count();
    let kept_joins = cone
        .edges()
        .iter()
        .filter(|(_, dst)| matches!(view.event(*dst).kind, EventKind::Join { .. }))
        .count();
    assert!(kept_forks >= 1, "fork edge into the cone must survive");
    assert_eq!(kept_joins, 0, "join edges beyond the cut must be dropped");
    for &(src, dst) in cone.edges() {
        assert!(cone.contains(&view, src) && cone.contains(&view, dst));
    }
    assert!(
        !cone.contains(&view, w3),
        "t3's unrelated write rides only on the dropped join"
    );
    assert_eq!(assert_verdicts_match(&tr, cop), SmtResult::Sat);
}

/// Wait/notify links are all-or-nothing: a cone that reaches the wake-up
/// acquire pulls in the release half and the notify; a cone cut before the
/// wait keeps none of it.
#[test]
fn wait_notify_link_is_all_or_nothing() {
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let l = b.new_lock("l");
    let t1 = ThreadId::MAIN;
    let t2 = b.fork(t1);
    // A racy pair entirely before the wait machinery.
    let early1 = b.write(t1, x, 1);
    let early2 = b.write(t2, x, 2);
    b.acquire(t2, l);
    let token = b.wait_begin(t2, l);
    b.acquire(t1, l);
    let n = b.notify(t1, l);
    b.release(t1, l);
    let woke = b.wait_end(token, Some(n));
    let late2 = b.write(t2, x, 3);
    b.release(t2, l);
    let late1 = b.write(t1, x, 4);
    let tr = b.finish();
    let view = tr.full_view();
    let skel = WindowSkeleton::new(&view);

    // Cut before the wait: no link, lock not cone-held.
    let before = skel.cone(&[Cop::new(early1, early2)], true);
    assert!(before.links().is_empty(), "link before the cut must drop");
    assert!(!before.lock_held(l));
    assert!(!before.contains(&view, woke));

    // Cut after the wake-up: the whole link comes along.
    let after = skel.cone(&[Cop::new(late1, late2)], true);
    assert_eq!(after.links().len(), 1, "wake-up link must survive intact");
    let link = &after.links()[0];
    assert!(after.contains(&view, link.release));
    assert!(after.contains(&view, link.acquire));
    assert!(after.contains(&view, link.notify.unwrap()));

    assert_verdicts_match(&tr, Cop::new(early1, early2));
    assert_verdicts_match(&tr, Cop::new(late1, late2));
}

/// A (reentrantly acquired) lock span that straddles the cone cut is
/// admitted whole: the release beyond the cut and the other thread's span
/// both join the cone, so mutual exclusion stays enforceable.
#[test]
fn reentrant_lock_span_straddling_cut_is_admitted_whole() {
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let y = b.var("y");
    let l = b.new_lock("l");
    let t1 = ThreadId::MAIN;
    let t2 = b.fork(t1);
    let acq1 = b.acquire(t1, l).unwrap();
    b.write(t1, y, 9);
    let rel1 = b.release(t1, l).unwrap();
    let w1 = b.write(t1, x, 1);
    let acq2 = b.acquire(t2, l).unwrap();
    assert_eq!(b.acquire(t2, l), None, "reentrant acquire emits no event");
    b.write(t2, y, 1);
    let w2 = b.write(t2, x, 2);
    assert_eq!(b.release(t2, l), None, "reentrant release emits no event");
    b.write(t2, y, 2);
    let rel2 = b.release(t2, l).unwrap();
    let tr = b.finish();
    let view = tr.full_view();
    let cop = Cop::new(w1, w2);

    let cone = WindowSkeleton::new(&view).cone(&[cop], true);
    assert!(cone.lock_held(l), "lock held around a cone access");
    for e in [acq1, rel1, acq2, rel2] {
        assert!(cone.contains(&view, e), "span endpoint {e} must be in cone");
    }
    assert_eq!(assert_verdicts_match(&tr, cop), SmtResult::Sat);
}

/// A read in the cone whose only matching write sits in another thread,
/// outside the MHB prefix of the accesses, must still drag that write in —
/// otherwise the read-match disjunction would be unsatisfiable and the
/// sliced formula unsound.
#[test]
fn read_match_write_outside_mhb_prefix_is_seeded() {
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let flag = b.var("flag");
    let t1 = ThreadId::MAIN;
    let t2 = b.fork(t1);
    let t3 = b.fork(t1);
    // The flag write happens after both forks: it is NOT ⪯ any t2 event.
    let wf = b.write(t1, flag, 1);
    let rf = b.read(t2, flag, 1);
    b.branch(t2);
    let w2 = b.write(t2, x, 2);
    let w3 = b.write(t3, x, 3);
    let tr = b.finish();
    let view = tr.full_view();
    assert!(!view.mhb(wf, w2), "precondition: flag write not MHB-before");
    let cop = Cop::new(w2, w3);

    let cone = WindowSkeleton::new(&view).cone(&[cop], true);
    assert!(cone.contains(&view, rf), "cf pulls the guarded read in");
    assert!(
        cone.contains(&view, wf),
        "the read's only matching write must be seeded for soundness"
    );
    assert_eq!(assert_verdicts_match(&tr, cop), SmtResult::Sat);
}

/// LockId display sanity used above: the first lock allocated is LockId(0).
#[test]
fn first_lock_is_id_zero() {
    let mut b = TraceBuilder::new();
    let l = b.new_lock("l");
    assert_eq!(l, LockId(0));
}
