//! Differential equivalence suite for streaming ingestion (the PR-4
//! determinism contract): streamed and whole-file detection must decide
//! identically — same races, same verdict counters, same report text —
//! at every `--jobs` level, for both wire formats, through the CLI and
//! the library drivers, including salvaged and fault-injected runs.
//!
//! Wall-clock output (the `solver …, wall …` suffix and the
//! `window times:` line) is run-dependent by nature; everything else on
//! stdout is compared byte for byte, and the `--metrics` documents are
//! compared byte for byte up to their `timings_us` section (exactly the
//! counter + histogram sections the contract covers).

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};
use std::sync::{Arc, Barrier};

use rvpredict::{
    DetectorConfig, Fault, FaultPlan, RaceDetector, SessionConfig, SessionManager, ThreadId, Trace,
    TraceBuilder,
};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_rvpredict")
}

fn dir() -> PathBuf {
    let dir = std::env::temp_dir().join("rvpredict-stream-equivalence");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A five-window trace (window size 300): one racy COP in window 0, then
/// race-free two-thread filler so every window has work to merge.
fn multi_window_trace() -> Trace {
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let t2 = b.fork(ThreadId::MAIN);
    b.write(ThreadId::MAIN, x, 1);
    b.write(t2, x, 2);
    let a = b.var("a");
    let c = b.var("c");
    for i in 0..700i64 {
        b.write(ThreadId::MAIN, a, i);
        b.write(t2, c, i);
    }
    b.finish()
}

/// Like [`multi_window_trace`], but the only racing pair sits *astride*
/// the 300-event window boundaries: t1's write to `x` lands in window 0
/// and t2's conflicting read lands in the last window, with only
/// thread-private filler in between. Fixed windows cannot see the pair;
/// cone mode must.
fn straddling_multi_window_trace() -> Trace {
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let t2 = b.fork(ThreadId::MAIN);
    b.write(ThreadId::MAIN, x, 1);
    let a = b.var("a");
    let c = b.var("c");
    for i in 0..700i64 {
        b.write(ThreadId::MAIN, a, i);
        b.write(t2, c, i);
    }
    b.read(t2, x, 1);
    b.finish()
}

/// Same trace with one torn read in window 2 (a value no write produced),
/// so strict mode rejects it and `--lenient` must salvage.
fn damaged_multi_window_trace() -> Trace {
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let t2 = b.fork(ThreadId::MAIN);
    b.write(ThreadId::MAIN, x, 1);
    b.write(t2, x, 2);
    let a = b.var("a");
    let c = b.var("c");
    for i in 0..350i64 {
        b.write(ThreadId::MAIN, a, i);
        b.write(t2, c, i);
    }
    b.read(ThreadId::MAIN, a, 999_999);
    for i in 350..700i64 {
        b.write(ThreadId::MAIN, a, i);
        b.write(t2, c, i);
    }
    b.finish()
}

/// Drops the run-dependent parts of stdout: the `window times:` line and
/// the `, solver …` wall-clock suffix of the summary line. Everything
/// kept must be byte-identical across drivers and worker counts.
fn stripped_stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .filter(|l| !l.trim_start().starts_with("window times:"))
        .map(|l| match l.find(", solver ") {
            Some(i) => l[..i].to_string(),
            None => l.to_string(),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Runs the binary with `--metrics`, returning (exit code, stripped
/// stdout, count-type metrics prefix — the document up to `timings_us`).
fn run_with_metrics(args: &[&str], trace_path: &str, out_name: &str) -> (i32, String, String) {
    let metrics_path = dir().join(out_name);
    let out = Command::new(bin())
        .args(args)
        .args(["--metrics", metrics_path.to_str().unwrap()])
        .arg(trace_path)
        .output()
        .expect("binary runs");
    let doc = std::fs::read_to_string(&metrics_path).unwrap_or_else(|e| {
        panic!(
            "metrics file missing ({e}); stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        )
    });
    let cut = doc
        .find("  \"timings_us\": {")
        .unwrap_or_else(|| panic!("no timings_us section in {doc}"));
    (
        out.status.code().expect("no signal"),
        stripped_stdout(&out),
        doc[..cut].to_string(),
    )
}

const JOBS: [&str; 4] = ["1", "2", "4", "8"];

/// The tentpole contract, end to end: whole-file and `--stream` runs over
/// the same JSON file produce identical report text and identical
/// count-type metrics at `--jobs` 1, 2, 4 and 8.
#[test]
fn streamed_cli_is_byte_identical_across_jobs() {
    let trace = multi_window_trace();
    let path = dir().join("equiv.json");
    std::fs::write(&path, rvpredict::to_json(&trace)).unwrap();
    let path = path.to_str().unwrap();

    let (base_code, base_out, base_counts) =
        run_with_metrics(&["--window", "300", "--jobs", "1"], path, "m-base.json");
    assert_eq!(base_code, 1, "the head COP races");
    for jobs in JOBS {
        for stream in [false, true] {
            let mut args = vec!["--window", "300", "--jobs", jobs];
            if stream {
                args.push("--stream");
            }
            let name = format!("m-{jobs}-{stream}.json");
            let (code, out, counts) = run_with_metrics(&args, path, &name);
            assert_eq!(code, base_code, "jobs={jobs} stream={stream}");
            assert_eq!(
                out, base_out,
                "stdout drifted at jobs={jobs} stream={stream}"
            );
            assert_eq!(
                counts, base_counts,
                "count-type metrics drifted at jobs={jobs} stream={stream}"
            );
        }
    }
}

/// NDJSON input through `--stream` decides identically; the only
/// count-type metric allowed to differ from the JSON run is the wire-size
/// counter `trace.ingest.bytes`.
#[test]
fn streamed_ndjson_matches_json_modulo_wire_size() {
    let trace = multi_window_trace();
    let json_path = dir().join("equiv-nd.json");
    let nd_path = dir().join("equiv-nd.ndjson");
    std::fs::write(&json_path, rvpredict::to_json(&trace)).unwrap();
    std::fs::write(&nd_path, rvpredict::to_ndjson(&trace)).unwrap();

    let (base_code, base_out, base_counts) = run_with_metrics(
        &["--window", "300", "--jobs", "1"],
        json_path.to_str().unwrap(),
        "m-nd-base.json",
    );
    let strip_wire = |doc: &str| -> String {
        doc.lines()
            .filter(|l| !l.contains("trace.ingest.bytes"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    for jobs in ["1", "4"] {
        let (code, out, counts) = run_with_metrics(
            &["--window", "300", "--jobs", jobs, "--stream"],
            nd_path.to_str().unwrap(),
            &format!("m-nd-{jobs}.json"),
        );
        assert_eq!(code, base_code);
        // stdout carries no wire-format trace of its own.
        assert_eq!(out, base_out, "ndjson stdout drifted at jobs={jobs}");
        assert_eq!(strip_wire(&counts), strip_wire(&base_counts));
    }
}

/// `-` reads the trace from stdin, both with and without `--stream`, and
/// decides identically to the file run.
#[test]
fn stdin_matches_file_input() {
    let trace = multi_window_trace();
    let path = dir().join("equiv-stdin.json");
    let json = rvpredict::to_json(&trace);
    std::fs::write(&path, &json).unwrap();

    let file_run = Command::new(bin())
        .args(["--window", "300", path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    for stream in [false, true] {
        let mut args = vec!["--window", "300"];
        if stream {
            args.push("--stream");
        }
        args.push("-");
        let mut child = Command::new(bin())
            .args(&args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("binary spawns");
        child
            .stdin
            .take()
            .unwrap()
            .write_all(json.as_bytes())
            .unwrap();
        let out = child.wait_with_output().unwrap();
        assert_eq!(out.status.code(), file_run.status.code(), "stream={stream}");
        assert_eq!(
            stripped_stdout(&out),
            stripped_stdout(&file_run),
            "stdin stdout drifted at stream={stream}"
        );
    }
}

/// `--lenient --stream` salvages the damaged trace exactly like the
/// whole-file lenient run: same drops on stderr, same verdicts, same
/// count-type metrics, at several worker counts.
#[test]
fn lenient_salvage_matches_across_modes() {
    let trace = damaged_multi_window_trace();
    let json_path = dir().join("damaged.json");
    let nd_path = dir().join("damaged.ndjson");
    std::fs::write(&json_path, rvpredict::to_json(&trace)).unwrap();
    std::fs::write(&nd_path, rvpredict::to_ndjson(&trace)).unwrap();
    let json_path = json_path.to_str().unwrap();

    // Strict mode rejects the torn read in every ingestion mode.
    for args in [vec![json_path], vec!["--stream", json_path]] {
        let out = Command::new(bin()).args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "strict must reject: {args:?}");
        let e = String::from_utf8_lossy(&out.stderr).into_owned();
        assert!(e.contains("not sequentially consistent"), "{e}");
    }

    let (base_code, base_out, base_counts) = run_with_metrics(
        &["--window", "300", "--jobs", "1", "--lenient"],
        json_path,
        "m-len-base.json",
    );
    assert_eq!(base_code, 1, "salvage keeps the racy head");
    assert!(base_counts.contains("salvage.dropped.inconsistent-read"));
    for jobs in JOBS {
        let (code, out, counts) = run_with_metrics(
            &["--window", "300", "--jobs", jobs, "--lenient", "--stream"],
            json_path,
            &format!("m-len-{jobs}.json"),
        );
        assert_eq!(code, base_code, "jobs={jobs}");
        assert_eq!(out, base_out, "lenient stdout drifted at jobs={jobs}");
        assert_eq!(
            counts, base_counts,
            "lenient metrics drifted at jobs={jobs}"
        );
    }
    // NDJSON wire format: identical modulo the wire-size counter.
    let strip_wire = |doc: &str| -> String {
        doc.lines()
            .filter(|l| !l.contains("trace.ingest.bytes"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let (code, out, counts) = run_with_metrics(
        &["--window", "300", "--jobs", "4", "--lenient", "--stream"],
        nd_path.to_str().unwrap(),
        "m-len-nd.json",
    );
    assert_eq!(code, base_code);
    assert_eq!(out, base_out);
    assert_eq!(strip_wire(&counts), strip_wire(&base_counts));
}

/// Fault injection composes with `--stream`: the failed window, the
/// degraded exit code, and the count-type metrics match the whole-file
/// run at every worker count.
#[test]
fn fault_injected_runs_match_across_modes() {
    let trace = multi_window_trace();
    let path = dir().join("faulty.json");
    std::fs::write(&path, rvpredict::to_json(&trace)).unwrap();
    let path = path.to_str().unwrap();

    let fault = ["--window", "300", "--inject-fault", "0:0:panic"];
    let (base_code, base_out, base_counts) = run_with_metrics(
        &[&fault[..], &["--jobs", "1"]].concat(),
        path,
        "m-fault-base.json",
    );
    assert_eq!(base_code, 3, "losing window 0 loses the race: degraded");
    assert!(base_out.contains("failed: injected fault"), "{base_out}");
    for jobs in JOBS {
        for stream in [false, true] {
            let mut args = [&fault[..], &["--jobs", jobs]].concat();
            if stream {
                args.push("--stream");
            }
            let (code, out, counts) =
                run_with_metrics(&args, path, &format!("m-fault-{jobs}-{stream}.json"));
            assert_eq!(code, base_code, "jobs={jobs} stream={stream}");
            assert_eq!(
                out, base_out,
                "fault stdout drifted at jobs={jobs} stream={stream}"
            );
            assert_eq!(
                counts, base_counts,
                "fault metrics drifted at jobs={jobs} stream={stream}"
            );
        }
    }
}

/// `--no-tiers` is report-invisible: stdout is byte-identical with the
/// cascade on and off, across wire formats (file JSON, streamed NDJSON,
/// stdin) and worker counts. Between the two settings only the cascade's
/// own attribution (`detector.tiers.*`) and the effort it saves
/// (`encoder.*`, `solver.*`) may differ in the count-type metrics; every
/// verdict counter must match.
#[test]
fn no_tiers_runs_are_report_identical_across_formats() {
    let trace = multi_window_trace();
    let json_path = dir().join("equiv-tiers.json");
    let nd_path = dir().join("equiv-tiers.ndjson");
    let json = rvpredict::to_json(&trace);
    std::fs::write(&json_path, &json).unwrap();
    std::fs::write(&nd_path, rvpredict::to_ndjson(&trace)).unwrap();
    let json_path = json_path.to_str().unwrap();

    let strip_wire = |doc: &str| -> String {
        doc.lines()
            .filter(|l| !l.contains("trace.ingest.bytes"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let strip_effort = |doc: &str| -> String {
        doc.lines()
            .filter(|l| {
                !l.contains("\"detector.tiers.")
                    && !l.contains("\"encoder.")
                    && !l.contains("\"solver.")
            })
            .collect::<Vec<_>>()
            .join("\n")
    };

    let mut outs = Vec::new();
    let mut verdict_counts = Vec::new();
    for no_tiers in [false, true] {
        let mut base_args = vec!["--window", "300", "--jobs", "1"];
        if no_tiers {
            base_args.push("--no-tiers");
        }
        let (base_code, base_out, base_counts) = run_with_metrics(
            &base_args,
            json_path,
            &format!("m-tiers-base-{no_tiers}.json"),
        );
        assert_eq!(base_code, 1, "the head COP races either way");
        // The attribution counters follow the flag: the screen confirms
        // the head race when on, and stays entirely silent when off.
        let confirmed = if no_tiers { 0 } else { 1 };
        assert!(
            base_counts.contains(&format!("\"detector.tiers.confirmed\": {confirmed}")),
            "no_tiers={no_tiers}: {base_counts}"
        );
        // Streamed JSON at several worker counts: everything identical.
        for jobs in ["2", "8"] {
            let mut args = vec!["--window", "300", "--jobs", jobs, "--stream"];
            if no_tiers {
                args.push("--no-tiers");
            }
            let (code, out, counts) =
                run_with_metrics(&args, json_path, &format!("m-tiers-{no_tiers}-{jobs}.json"));
            assert_eq!(code, base_code, "no_tiers={no_tiers} jobs={jobs}");
            assert_eq!(out, base_out, "no_tiers={no_tiers} jobs={jobs}: stdout");
            assert_eq!(
                counts, base_counts,
                "no_tiers={no_tiers} jobs={jobs}: metrics"
            );
        }
        // Streamed NDJSON: identical modulo the wire-size counter.
        let mut nd_args = vec!["--window", "300", "--jobs", "4", "--stream"];
        if no_tiers {
            nd_args.push("--no-tiers");
        }
        let (code, out, counts) = run_with_metrics(
            &nd_args,
            nd_path.to_str().unwrap(),
            &format!("m-tiers-nd-{no_tiers}.json"),
        );
        assert_eq!(code, base_code, "no_tiers={no_tiers} ndjson");
        assert_eq!(out, base_out, "no_tiers={no_tiers} ndjson: stdout");
        assert_eq!(strip_wire(&counts), strip_wire(&base_counts));
        // Stdin ingestion: same report text.
        let mut stdin_args = vec!["--window", "300"];
        if no_tiers {
            stdin_args.push("--no-tiers");
        }
        stdin_args.push("-");
        let mut child = Command::new(bin())
            .args(&stdin_args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("binary spawns");
        child
            .stdin
            .take()
            .unwrap()
            .write_all(json.as_bytes())
            .unwrap();
        let out = child.wait_with_output().unwrap();
        assert_eq!(out.status.code(), Some(base_code), "no_tiers={no_tiers}");
        assert_eq!(
            stripped_stdout(&out),
            base_out,
            "no_tiers={no_tiers} stdin: stdout"
        );
        outs.push(base_out);
        verdict_counts.push(strip_effort(&base_counts));
    }
    // Across the flag: the report and every verdict counter are identical.
    assert_eq!(outs[0], outs[1], "--no-tiers changed the report text");
    assert_eq!(
        verdict_counts[0], verdict_counts[1],
        "--no-tiers changed a verdict counter"
    );
}

/// The cone-mode matrix (PR 8): on a trace whose only racing pair sits
/// astride window boundaries, `--window-mode cone` reports the race
/// byte-identically across wire formats (file JSON, streamed JSON,
/// streamed NDJSON, stdin) and `--jobs` 1/2/4/8 — while `--window-mode
/// fixed` on the same trace stays blind (exit 0, no race), which is
/// exactly the blindness the cone matrix certifies against.
#[test]
fn cone_mode_straddle_runs_are_byte_identical_across_drivers() {
    let trace = straddling_multi_window_trace();
    let json_path = dir().join("straddle.json");
    let nd_path = dir().join("straddle.ndjson");
    let json = rvpredict::to_json(&trace);
    std::fs::write(&json_path, &json).unwrap();
    std::fs::write(&nd_path, rvpredict::to_ndjson(&trace)).unwrap();
    let json_path = json_path.to_str().unwrap();

    // Fixed mode is blind to the straddling pair: clean exit, no race.
    let fixed = Command::new(bin())
        .args(["--window", "300", "--window-mode", "fixed", json_path])
        .output()
        .expect("binary runs");
    assert_eq!(fixed.status.code(), Some(0), "fixed mode sees no race");
    assert!(
        String::from_utf8_lossy(&fixed.stdout).contains("0 race(s)"),
        "{}",
        String::from_utf8_lossy(&fixed.stdout)
    );

    let base_args = ["--window", "300", "--window-mode", "cone", "--jobs", "1"];
    let (base_code, base_out, base_counts) =
        run_with_metrics(&base_args, json_path, "m-straddle-base.json");
    assert_eq!(base_code, 1, "cone mode reports the straddling race");
    assert!(base_out.contains("1 race(s)"), "{base_out}");
    assert!(
        base_counts.contains("\"detector.boundary.straddle_races\": 1"),
        "{base_counts}"
    );
    let strip_wire = |doc: &str| -> String {
        doc.lines()
            .filter(|l| !l.contains("trace.ingest.bytes"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    for jobs in JOBS {
        // Whole-file and streamed JSON: everything byte-identical.
        for stream in [false, true] {
            let mut args = vec!["--window", "300", "--window-mode", "cone", "--jobs", jobs];
            if stream {
                args.push("--stream");
            }
            let name = format!("m-straddle-{jobs}-{stream}.json");
            let (code, out, counts) = run_with_metrics(&args, json_path, &name);
            assert_eq!(code, base_code, "jobs={jobs} stream={stream}");
            assert_eq!(
                out, base_out,
                "cone stdout drifted at jobs={jobs} stream={stream}"
            );
            assert_eq!(
                counts, base_counts,
                "cone metrics drifted at jobs={jobs} stream={stream}"
            );
        }
        // Streamed NDJSON: identical modulo the wire-size counter.
        let (code, out, counts) = run_with_metrics(
            &[
                "--window",
                "300",
                "--window-mode",
                "cone",
                "--jobs",
                jobs,
                "--stream",
            ],
            nd_path.to_str().unwrap(),
            &format!("m-straddle-nd-{jobs}.json"),
        );
        assert_eq!(code, base_code, "ndjson jobs={jobs}");
        assert_eq!(out, base_out, "ndjson cone stdout drifted at jobs={jobs}");
        assert_eq!(strip_wire(&counts), strip_wire(&base_counts));
        // Stdin, both ingestion modes: same report text.
        for stream in [false, true] {
            let mut args = vec!["--window", "300", "--window-mode", "cone", "--jobs", jobs];
            if stream {
                args.push("--stream");
            }
            args.push("-");
            let mut child = Command::new(bin())
                .args(&args)
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::piped())
                .spawn()
                .expect("binary spawns");
            child
                .stdin
                .take()
                .unwrap()
                .write_all(json.as_bytes())
                .unwrap();
            let out = child.wait_with_output().unwrap();
            assert_eq!(out.status.code(), Some(base_code), "stdin jobs={jobs}");
            assert_eq!(
                stripped_stdout(&out),
                base_out,
                "stdin cone stdout drifted at jobs={jobs} stream={stream}"
            );
        }
    }
}

/// On a trace with no boundary-straddling conflicting pair, `--window-mode
/// cone` (the default) and `--window-mode fixed` are byte-identical —
/// stdout, exit code and count-type metrics — whole-file and streamed, at
/// several worker counts. Passing no flag at all equals passing `cone`
/// explicitly.
#[test]
fn fixed_and_cone_match_on_non_straddling_traces() {
    let trace = multi_window_trace();
    let path = dir().join("no-straddle.json");
    std::fs::write(&path, rvpredict::to_json(&trace)).unwrap();
    let path = path.to_str().unwrap();

    let (base_code, base_out, base_counts) = run_with_metrics(
        &["--window", "300", "--jobs", "1"],
        path,
        "m-mode-default.json",
    );
    assert_eq!(base_code, 1, "the in-window head COP still races");
    for mode in ["fixed", "cone"] {
        for jobs in ["1", "4"] {
            for stream in [false, true] {
                let mut args = vec!["--window", "300", "--window-mode", mode, "--jobs", jobs];
                if stream {
                    args.push("--stream");
                }
                let name = format!("m-mode-{mode}-{jobs}-{stream}.json");
                let (code, out, counts) = run_with_metrics(&args, path, &name);
                assert_eq!(code, base_code, "mode={mode} jobs={jobs} stream={stream}");
                assert_eq!(
                    out, base_out,
                    "stdout drifted at mode={mode} jobs={jobs} stream={stream}"
                );
                assert_eq!(
                    counts, base_counts,
                    "metrics drifted at mode={mode} jobs={jobs} stream={stream}"
                );
            }
        }
    }
}

/// The CLI degradation contract for a starved `--spill-budget`: the
/// straddling race is not reported, the COP surfaces as undecided, and
/// the exit code says "race freedom not established" (3) instead of 0.
#[test]
fn spill_budget_zero_degrades_via_cli() {
    let trace = straddling_multi_window_trace();
    let path = dir().join("straddle-starved.json");
    std::fs::write(&path, rvpredict::to_json(&trace)).unwrap();
    let out = Command::new(bin())
        .args([
            "--window",
            "300",
            "--window-mode",
            "cone",
            "--spill-budget",
            "0",
            path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3), "degraded, not falsely clean");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 race(s)"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("undecided") && stderr.contains("race freedom is not established"),
        "{stderr}"
    );
}

/// One tenant's settings for the multi-session suite: a per-session flag
/// mix (the CLI's `--no-tiers` / `--no-slice` / `--lenient` /
/// `--inject-fault` knobs) plus the trace it streams.
struct Tenant {
    tag: &'static str,
    bytes: String,
    config: SessionConfig,
    solo: String,
}

/// Builds the co-tenant mix: plain, `--no-tiers`, `--no-slice`, a
/// fault-injected stream and a `--lenient` session on a damaged trace —
/// each with its solo (standalone-driver) `deterministic_summary`.
fn tenant_mix() -> Vec<Tenant> {
    let clean = multi_window_trace();
    let damaged = damaged_multi_window_trace();
    let base = DetectorConfig {
        window_size: 300,
        parallelism: 1,
        ..Default::default()
    };
    let mut tenants = Vec::new();
    let mut push = |tag, trace: &Trace, lenient: bool, detector: DetectorConfig| {
        let solo_trace = if lenient {
            rvpredict::salvage_trace(trace.data().clone()).0
        } else {
            trace.clone()
        };
        let solo = RaceDetector::with_config(detector.clone())
            .detect(&solo_trace)
            .deterministic_summary();
        tenants.push(Tenant {
            tag,
            bytes: rvpredict::to_ndjson(trace),
            config: SessionConfig {
                detector,
                lenient,
                ..SessionConfig::default()
            },
            solo,
        });
    };
    push("plain", &clean, false, base.clone());
    push(
        "no-tiers",
        &clean,
        false,
        DetectorConfig {
            tiers: false,
            ..base.clone()
        },
    );
    push(
        "no-slice",
        &clean,
        false,
        DetectorConfig {
            slice: false,
            ..base.clone()
        },
    );
    push(
        "faulted",
        &clean,
        false,
        DetectorConfig {
            fault_plan: Some(Arc::new(FaultPlan::new().inject(0, 0, Fault::Panic))),
            ..base.clone()
        },
    );
    push("lenient", &damaged, true, base);
    tenants
}

/// The daemon-session contract at the library layer: N concurrent
/// sessions with different per-tenant flag mixes (including a
/// fault-injected co-tenant) over one shared pool each report exactly
/// what the standalone driver reports for their trace, at every pool
/// size.
#[test]
fn concurrent_sessions_match_solo_at_every_pool_size() {
    let tenants = Arc::new(tenant_mix());
    for workers in [1usize, 2, 4, 8] {
        let manager = Arc::new(SessionManager::new(workers));
        let barrier = Arc::new(Barrier::new(tenants.len()));
        let handles: Vec<_> = (0..tenants.len())
            .map(|i| {
                let tenants = tenants.clone();
                let manager = manager.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    let t = &tenants[i];
                    let mut session = manager.open_session(t.config.clone());
                    barrier.wait();
                    // Interleave ingestion so sessions genuinely co-tenant
                    // the pool instead of running back to back.
                    for chunk in t.bytes.as_bytes().chunks(127) {
                        session.feed(chunk).unwrap();
                    }
                    (i, session.finish().unwrap())
                })
            })
            .collect();
        for h in handles {
            let (i, outcome) = h.join().unwrap();
            let t = &tenants[i];
            assert_eq!(
                outcome.report.deterministic_summary(),
                t.solo,
                "tenant {} drifted from its solo run at workers={workers}",
                t.tag
            );
            assert_eq!(outcome.shed_windows, 0, "healthy pool never sheds");
        }
    }
}

/// Tearing one session down mid-stream leaves every co-tenant's report
/// untouched: the survivors still match their solo runs byte for byte.
#[test]
fn killed_session_leaves_neighbors_byte_identical() {
    let tenants = Arc::new(tenant_mix());
    let manager = Arc::new(SessionManager::new(2));
    let barrier = Arc::new(Barrier::new(tenants.len() + 1));
    let victim_bytes = tenants[0].bytes.clone();
    let victim_cfg = tenants[0].config.clone();
    let victim = {
        let manager = manager.clone();
        let barrier = barrier.clone();
        std::thread::spawn(move || {
            let mut session = manager.open_session(victim_cfg);
            barrier.wait();
            session
                .feed(&victim_bytes.as_bytes()[..victim_bytes.len() / 2])
                .unwrap();
            session.abort("client killed mid-stream")
        })
    };
    let handles: Vec<_> = (0..tenants.len())
        .map(|i| {
            let tenants = tenants.clone();
            let manager = manager.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let t = &tenants[i];
                let mut session = manager.open_session(t.config.clone());
                barrier.wait();
                for chunk in t.bytes.as_bytes().chunks(127) {
                    session.feed(chunk).unwrap();
                }
                (i, session.finish().unwrap())
            })
        })
        .collect();
    let err = victim.join().unwrap();
    assert_eq!(err.reason, "client killed mid-stream");
    assert!(err.to_string().contains("torn down"));
    for h in handles {
        let (i, outcome) = h.join().unwrap();
        let t = &tenants[i];
        assert_eq!(
            outcome.report.deterministic_summary(),
            t.solo,
            "tenant {} was disturbed by the killed neighbor",
            t.tag
        );
    }
}

/// Library-level contract: the three drivers (eager, pipelined, streamed)
/// render byte-identical `deterministic_summary` outputs at every
/// parallelism level, with and without a fault plan.
#[test]
fn drivers_render_identical_deterministic_summaries() {
    let trace = multi_window_trace();
    let json = rvpredict::to_json(&trace);
    for faulty in [false, true] {
        let mut baseline: Option<String> = None;
        for jobs in [1usize, 2, 4, 8] {
            let mut cfg = DetectorConfig {
                window_size: 300,
                parallelism: jobs,
                ..Default::default()
            };
            if faulty {
                cfg.fault_plan = Some(std::sync::Arc::new(FaultPlan::new().inject(
                    0,
                    0,
                    Fault::Timeout,
                )));
            }
            let detector = RaceDetector::with_config(cfg);
            let eager = detector.detect(&trace).deterministic_summary();
            let pipelined = detector.detect_pipelined(&trace).deterministic_summary();
            let streamed = detector
                .detect_stream(json.as_bytes())
                .expect("valid trace streams")
                .report
                .deterministic_summary();
            assert_eq!(eager, pipelined, "faulty={faulty} jobs={jobs}");
            assert_eq!(eager, streamed, "faulty={faulty} jobs={jobs}");
            let base = baseline.get_or_insert_with(|| eager.clone());
            assert_eq!(*base, eager, "faulty={faulty} jobs={jobs}");
        }
    }
}
