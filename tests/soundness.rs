//! Soundness properties (paper Theorems 1 and 3), checked end-to-end on
//! seeded random program generation:
//!
//! * every race the maximal detector reports carries a witness schedule
//!   that passes the structural consistency checker;
//! * every required read replays to its original value under the witness;
//! * detection is deterministic for a fixed trace.

use rvpredict::{
    check_consistency, check_schedule, schedule_read_values, ConsistencyMode, DetectorConfig,
    RaceDetector, ViewExt,
};
use rvsim::rng::SmallRng;
use rvsim::stmts::*;
use rvsim::{execute, ExecConfig, Expr, GlobalId, Local, LockRef, Outcome, ProcId, Program, Stmt};

/// Small random two-or-three-worker programs mixing locked and unlocked
/// accesses to a few shared variables, plus guarded branches.
#[derive(Debug, Clone)]
enum OpSpec {
    LockedRmw(u32),
    RacyWrite(u32),
    RacyRead(u32),
    GuardedRead(u32),
}

fn gen_program(rng: &mut SmallRng) -> Program {
    let workers: Vec<Vec<OpSpec>> = (0..rng.gen_range(2..4usize))
        .map(|_| {
            (0..rng.gen_range(1..5usize))
                .map(|_| {
                    let v = rng.gen_range(0..3u32);
                    match rng.gen_range(0..4u32) {
                        0 => OpSpec::LockedRmw(v),
                        1 => OpSpec::RacyWrite(v),
                        2 => OpSpec::RacyRead(v),
                        _ => OpSpec::GuardedRead(v),
                    }
                })
                .collect()
        })
        .collect();
    build_program(workers)
}

fn build_program(workers: Vec<Vec<OpSpec>>) -> Program {
    let globals = vec![scalar("v0", 0), scalar("v1", 0), scalar("v2", 0)];
    let r = Local(0);
    let mk = |ops: &[OpSpec]| -> Vec<Stmt> {
        let mut body = Vec::new();
        for op in ops {
            match *op {
                OpSpec::LockedRmw(v) => body.extend([
                    lock(LockRef(v % 2)),
                    load(r, GlobalId(v)),
                    store(GlobalId(v), Expr::add(r.into(), 1.into())),
                    unlock(LockRef(v % 2)),
                ]),
                OpSpec::RacyWrite(v) => body.push(store(GlobalId(v), 5.into())),
                OpSpec::RacyRead(v) => body.push(load(r, GlobalId(v))),
                OpSpec::GuardedRead(v) => body.extend([
                    load(r, GlobalId(v)),
                    if_(
                        Expr::eq(r.into(), 0.into()),
                        vec![load(Local(1), GlobalId((v + 1) % 3))],
                        vec![],
                    ),
                ]),
            }
        }
        body
    };
    let procs: Vec<Vec<Stmt>> = workers.iter().map(|w| mk(w)).collect();
    let mut main: Vec<Stmt> = (0..procs.len() as u32).map(ProcId).map(fork).collect();
    main.extend((0..procs.len() as u32).map(ProcId).map(join));
    Program::new(globals, 2, main, procs)
}

/// Case count, overridable via `PROPTEST_CASES` (the knob kept its name
/// when the suite moved off proptest, so documented invocations work).
fn case_count(default: usize) -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Drives `cases` completed random executions through `check`, skipping
/// (like `prop_assume`) runs that deadlock or exhaust their schedule.
fn for_completed_executions(
    master_seed: u64,
    cases: usize,
    mut check: impl FnMut(&rvsim::Execution),
) {
    let cases = case_count(cases);
    let mut rng = SmallRng::seed_from_u64(master_seed);
    let mut checked = 0;
    for _attempt in 0..cases * 20 {
        if checked == cases {
            break;
        }
        let program = gen_program(&mut rng);
        let seed = rng.gen_range(0..1000u64);
        let exec = execute(&program, &ExecConfig::seeded(seed)).unwrap();
        if exec.outcome != Outcome::Completed {
            continue;
        }
        checked += 1;
        check(&exec);
    }
    assert_eq!(checked, cases, "not enough completed executions");
}

/// Every witness of every reported race validates: structural schedule
/// consistency, adjacency, and required-read value preservation.
#[test]
fn witnesses_always_validate() {
    for_completed_executions(0xA11CE, 48, |exec| {
        assert!(check_consistency(&exec.trace).is_empty());
        let report = RaceDetector::new().detect(&exec.trace);
        // The soundness gate must never trip: SAT ⟹ valid witness.
        assert_eq!(report.stats.witness_failures, 0);
        let view = exec.trace.full_view();
        for race in &report.races {
            assert_eq!(check_schedule(&view, &race.schedule), Ok(()));
            let n = race.schedule.0.len();
            assert!(n >= 2);
            assert_eq!(race.schedule.0[n - 2], race.cop.first);
            assert_eq!(race.schedule.0[n - 1], race.cop.second);
        }
    });
}

/// Said-mode witnesses are complete reorderings preserving every read.
#[test]
fn said_witnesses_preserve_all_reads() {
    for_completed_executions(0x5A1D, 48, |exec| {
        let cfg = DetectorConfig {
            mode: ConsistencyMode::WholeTrace,
            ..Default::default()
        };
        let report = RaceDetector::with_config(cfg).detect(&exec.trace);
        assert_eq!(report.stats.witness_failures, 0);
        let view = exec.trace.full_view();
        for race in &report.races {
            assert_eq!(race.schedule.len(), exec.trace.len());
            let values = schedule_read_values(&view, &race.schedule);
            for id in view.ids() {
                if let Some(original) = view.event(id).kind.value() {
                    if view.event(id).kind.is_read() {
                        assert_eq!(values[&id], original, "read {} changed", id);
                    }
                }
            }
        }
    });
}

/// Detection is a pure function of the trace.
#[test]
fn detection_is_deterministic() {
    for_completed_executions(0xDE7, 32, |exec| {
        let a = RaceDetector::new().detect(&exec.trace);
        let b = RaceDetector::new().detect(&exec.trace);
        assert_eq!(a.signatures(), b.signatures());
    });
}

/// Racy programs under different schedules: a race reported from one
/// observed schedule corresponds to behaviour that actually varies across
/// schedules (sanity link between prediction and reality).
#[test]
fn predicted_race_manifests_across_schedules() {
    // t1: x=1 ; t2: r=x — the read's value depends on the schedule.
    let p = Program::new(
        vec![scalar("x", 0)],
        0,
        vec![
            fork(ProcId(0)),
            store(GlobalId(0), 1.into()),
            join(ProcId(0)),
        ],
        vec![vec![load(Local(0), GlobalId(0))]],
    );
    let mut seen = std::collections::BTreeSet::new();
    let mut detected = false;
    for seed in 0..40 {
        let exec = execute(&p, &ExecConfig::seeded(seed)).unwrap();
        let read_value = exec
            .trace
            .events()
            .iter()
            .find(|e| e.kind.is_read())
            .and_then(|e| e.kind.value())
            .unwrap();
        seen.insert(read_value.0);
        if RaceDetector::new().detect(&exec.trace).n_races() > 0 {
            detected = true;
        }
    }
    assert!(detected, "the race is detected from some observed schedule");
    assert_eq!(
        seen.len(),
        2,
        "and the racy read indeed observes both values"
    );
}
