//! Soundness properties (paper Theorems 1 and 3), checked end-to-end and
//! with property-based random program generation:
//!
//! * every race the maximal detector reports carries a witness schedule
//!   that passes the structural consistency checker;
//! * every required read replays to its original value under the witness;
//! * detection is deterministic for a fixed trace.

use proptest::prelude::*;
use rvpredict::{
    check_consistency, check_schedule, schedule_read_values, ConsistencyMode, DetectorConfig,
    RaceDetector, ViewExt,
};
use rvsim::stmts::*;
use rvsim::{execute, ExecConfig, Expr, GlobalId, Local, LockRef, Outcome, ProcId, Program, Stmt};

/// Strategy: small random two-or-three-worker programs mixing locked and
/// unlocked accesses to a few shared variables, plus guarded branches.
fn arb_program() -> impl Strategy<Value = Program> {
    let op = prop_oneof![
        // locked rmw on var v with lock v%2
        (0u32..3).prop_map(OpSpec::LockedRmw),
        (0u32..3).prop_map(OpSpec::RacyWrite),
        (0u32..3).prop_map(OpSpec::RacyRead),
        (0u32..3).prop_map(OpSpec::GuardedRead),
    ];
    (proptest::collection::vec(proptest::collection::vec(op, 1..5), 2..4))
        .prop_map(build_program)
}

#[derive(Debug, Clone)]
enum OpSpec {
    LockedRmw(u32),
    RacyWrite(u32),
    RacyRead(u32),
    GuardedRead(u32),
}

fn build_program(workers: Vec<Vec<OpSpec>>) -> Program {
    let globals = vec![scalar("v0", 0), scalar("v1", 0), scalar("v2", 0)];
    let r = Local(0);
    let mk = |ops: &[OpSpec]| -> Vec<Stmt> {
        let mut body = Vec::new();
        for op in ops {
            match *op {
                OpSpec::LockedRmw(v) => body.extend([
                    lock(LockRef(v % 2)),
                    load(r, GlobalId(v)),
                    store(GlobalId(v), Expr::add(r.into(), 1.into())),
                    unlock(LockRef(v % 2)),
                ]),
                OpSpec::RacyWrite(v) => body.push(store(GlobalId(v), 5.into())),
                OpSpec::RacyRead(v) => body.push(load(r, GlobalId(v))),
                OpSpec::GuardedRead(v) => body.extend([
                    load(r, GlobalId(v)),
                    if_(
                        Expr::eq(r.into(), 0.into()),
                        vec![load(Local(1), GlobalId((v + 1) % 3))],
                        vec![],
                    ),
                ]),
            }
        }
        body
    };
    let procs: Vec<Vec<Stmt>> = workers.iter().map(|w| mk(w)).collect();
    let mut main: Vec<Stmt> = (0..procs.len() as u32).map(ProcId).map(fork).collect();
    main.extend((0..procs.len() as u32).map(ProcId).map(join));
    Program::new(globals, 2, main, procs)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Every witness of every reported race validates: structural schedule
    /// consistency, adjacency, and required-read value preservation.
    #[test]
    fn witnesses_always_validate(program in arb_program(), seed in 0u64..1000) {
        let exec = execute(&program, &ExecConfig::seeded(seed)).unwrap();
        prop_assume!(exec.outcome == Outcome::Completed);
        prop_assert!(check_consistency(&exec.trace).is_empty());
        let report = RaceDetector::new().detect(&exec.trace);
        // The soundness gate must never trip: SAT ⟹ valid witness.
        prop_assert_eq!(report.stats.witness_failures, 0);
        let view = exec.trace.full_view();
        for race in &report.races {
            prop_assert_eq!(check_schedule(&view, &race.schedule), Ok(()));
            let n = race.schedule.0.len();
            prop_assert!(n >= 2);
            prop_assert_eq!(race.schedule.0[n - 2], race.cop.first);
            prop_assert_eq!(race.schedule.0[n - 1], race.cop.second);
        }
    }

    /// Said-mode witnesses are complete reorderings preserving every read.
    #[test]
    fn said_witnesses_preserve_all_reads(program in arb_program(), seed in 0u64..500) {
        let exec = execute(&program, &ExecConfig::seeded(seed)).unwrap();
        prop_assume!(exec.outcome == Outcome::Completed);
        let cfg = DetectorConfig { mode: ConsistencyMode::WholeTrace, ..Default::default() };
        let report = RaceDetector::with_config(cfg).detect(&exec.trace);
        prop_assert_eq!(report.stats.witness_failures, 0);
        let view = exec.trace.full_view();
        for race in &report.races {
            prop_assert_eq!(race.schedule.len(), exec.trace.len());
            let values = schedule_read_values(&view, &race.schedule);
            for id in view.ids() {
                if let Some(original) = view.event(id).kind.value() {
                    if view.event(id).kind.is_read() {
                        prop_assert_eq!(values[&id], original, "read {} changed", id);
                    }
                }
            }
        }
    }

    /// Detection is a pure function of the trace.
    #[test]
    fn detection_is_deterministic(program in arb_program(), seed in 0u64..200) {
        let exec = execute(&program, &ExecConfig::seeded(seed)).unwrap();
        prop_assume!(exec.outcome == Outcome::Completed);
        let a = RaceDetector::new().detect(&exec.trace);
        let b = RaceDetector::new().detect(&exec.trace);
        prop_assert_eq!(a.signatures(), b.signatures());
    }
}

/// Racy programs under different schedules: a race reported from one
/// observed schedule corresponds to behaviour that actually varies across
/// schedules (sanity link between prediction and reality).
#[test]
fn predicted_race_manifests_across_schedules() {
    // t1: x=1 ; t2: r=x — the read's value depends on the schedule.
    let p = Program::new(
        vec![scalar("x", 0)],
        0,
        vec![fork(ProcId(0)), store(GlobalId(0), 1.into()), join(ProcId(0))],
        vec![vec![load(Local(0), GlobalId(0))]],
    );
    let mut seen = std::collections::BTreeSet::new();
    let mut detected = false;
    for seed in 0..40 {
        let exec = execute(&p, &ExecConfig::seeded(seed)).unwrap();
        let read_value = exec
            .trace
            .events()
            .iter()
            .find(|e| e.kind.is_read())
            .and_then(|e| e.kind.value())
            .unwrap();
        seen.insert(read_value.0);
        if RaceDetector::new().detect(&exec.trace).n_races() > 0 {
            detected = true;
        }
    }
    assert!(detected, "the race is detected from some observed schedule");
    assert_eq!(seen.len(), 2, "and the racy read indeed observes both values");
}
