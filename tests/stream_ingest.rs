//! Edge cases of streaming ingestion, end to end through the CLI: traces
//! whose shape stresses the window dispatcher (empty, shorter than one
//! window, an exact multiple of the window size), NDJSON formatting slack
//! (blank lines, missing trailing newline), and truncated input — which
//! must surface the *same* `JsonError` text and byte offset the
//! whole-file parser produces.

use std::path::PathBuf;
use std::process::{Command, Output};

use rvpredict::{ThreadId, Trace, TraceBuilder};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_rvpredict")
}

fn fixture(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("rvpredict-stream-ingest");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A trace of exactly `n` events: a racy head plus single-thread filler.
fn trace_of_len(n: usize) -> Trace {
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let t2 = b.fork(ThreadId::MAIN);
    b.write(ThreadId::MAIN, x, 1);
    b.write(t2, x, 2);
    let a = b.var("a");
    assert!(b.len() <= n, "head alone is {} events", b.len());
    while b.len() < n {
        b.write(ThreadId::MAIN, a, b.len() as i64);
    }
    let t = b.finish();
    assert_eq!(t.len(), n);
    t
}

#[test]
fn empty_trace_streams_to_a_clean_zero_race_run() {
    let t = TraceBuilder::new().finish();
    let path = fixture("empty.json", &rvpredict::to_json(&t));
    for mode in [&[][..], &["--stream"][..]] {
        let out = run(&[mode, &[path.to_str().unwrap()]].concat());
        assert_eq!(
            out.status.code(),
            Some(0),
            "mode={mode:?}: {}",
            stderr(&out)
        );
        assert!(
            stdout(&out).contains("0 race(s); 0 window(s)"),
            "mode={mode:?}: {}",
            stdout(&out)
        );
    }
}

#[test]
fn trace_shorter_than_one_window_is_a_single_partial_window() {
    let t = trace_of_len(40);
    let path = fixture("short.json", &rvpredict::to_json(&t));
    // Default window is 10000: the whole trace is one partial window that
    // is only dispatched at end of input.
    for mode in [&[][..], &["--stream"][..]] {
        let out = run(&[mode, &[path.to_str().unwrap()]].concat());
        assert_eq!(out.status.code(), Some(1), "mode={mode:?}");
        assert!(
            stdout(&out).contains("1 race(s); 1 window(s)"),
            "mode={mode:?}: {}",
            stdout(&out)
        );
    }
}

#[test]
fn trace_length_an_exact_multiple_of_the_window_divides_cleanly() {
    let t = trace_of_len(600);
    let path = fixture("exact.json", &rvpredict::to_json(&t));
    for mode in [&[][..], &["--stream"][..]] {
        let out = run(&[mode, &["--window", "300", path.to_str().unwrap()]].concat());
        assert_eq!(out.status.code(), Some(1), "mode={mode:?}");
        assert!(
            stdout(&out).contains("1 race(s); 2 window(s)"),
            "mode={mode:?}: {}",
            stdout(&out)
        );
    }
}

#[test]
fn ndjson_with_blank_lines_and_no_trailing_newline_parses() {
    let t = trace_of_len(40);
    let nd = rvpredict::to_ndjson(&t);
    let mut messy = String::from("\n   \n");
    for line in nd.lines() {
        messy.push_str(line);
        messy.push_str("\n\n");
    }
    messy.truncate(messy.trim_end().len()); // no trailing newline either
    let path = fixture("messy.ndjson", &messy);
    let out = run(&["--stream", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    assert!(stdout(&out).contains("1 race(s)"), "{}", stdout(&out));
}

/// Mid-event truncation: the streaming parser must report the same error
/// message — including the byte offset and context snippet — that the
/// whole-file parser reports for the identical bytes.
#[test]
fn truncation_error_offsets_match_whole_file_mode() {
    let t = trace_of_len(120);
    let json = rvpredict::to_json(&t);
    // Cut in the middle of an event object, away from any boundary.
    for cut in [json.len() / 3, json.len() / 2, json.len() - 7] {
        let prefix = &json[..cut];
        let path = fixture(&format!("trunc-{cut}.json"), prefix);
        let whole = run(&[path.to_str().unwrap()]);
        let streamed = run(&["--stream", path.to_str().unwrap()]);
        assert_eq!(whole.status.code(), Some(2), "cut={cut}");
        assert_eq!(streamed.status.code(), Some(2), "cut={cut}");
        let we = stderr(&whole);
        let se = stderr(&streamed);
        assert_eq!(we, se, "error text must match at cut={cut}");
        assert!(we.contains("at byte"), "offset missing at cut={cut}: {we}");
    }
}

/// NDJSON truncation mid-line: the error's byte offset points into the
/// cut line, and parsing the same bytes wholesale fails identically.
#[test]
fn ndjson_truncation_reports_an_in_line_offset() {
    let t = trace_of_len(40);
    let nd = rvpredict::to_ndjson(&t);
    // Cut a few bytes into a line somewhere past the midpoint.
    let nl = nd[..nd.len() / 2].rfind('\n').expect("multi-line document");
    let cut = nl + 11;
    assert!(cut < nd.len());
    let prefix = &nd[..cut];
    assert!(!prefix.ends_with('\n'), "cut must land mid-line");
    let path = fixture("trunc.ndjson", prefix);
    let out = run(&["--stream", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let e = stderr(&out);
    assert!(e.contains("at byte"), "{e}");
    // The reported offset falls within the truncated line.
    let offset: usize = e
        .split("at byte ")
        .nth(1)
        .and_then(|rest| {
            rest.split(|c: char| !c.is_ascii_digit())
                .next()?
                .parse()
                .ok()
        })
        .unwrap_or_else(|| panic!("no byte offset in: {e}"));
    let line_start = prefix.rfind('\n').map(|i| i + 1).unwrap_or(0);
    assert!(
        offset >= line_start && offset <= prefix.len(),
        "offset {offset} outside the cut line starting at {line_start} (len {})",
        prefix.len()
    );
}

/// A trace whose metadata is dense with multi-byte UTF-8 (variable and
/// lock names), so the streaming parser's error-snippet margin regularly
/// lands inside a code point.
fn unicode_trace() -> Trace {
    let mut b = TraceBuilder::new();
    let t2 = b.fork(ThreadId::MAIN);
    let mut vars = Vec::new();
    for i in 0..40 {
        vars.push(b.var(&format!("αβγ—δ🧵ε{i}")));
    }
    for (i, &v) in vars.iter().enumerate() {
        b.write(ThreadId::MAIN, v, i as i64);
        b.write(t2, v, -(i as i64));
    }
    b.finish()
}

/// Multi-byte UTF-8 across chunk boundaries: a document heavy with
/// non-ASCII names parses identically whether fed whole or in chunks of
/// any size (including 1), and a truncation error carries the *same*
/// message, byte offset and context snippet as the whole-file parser —
/// even when the retained snippet margin would land mid-code-point.
#[test]
fn multibyte_chunk_boundaries_match_whole_file_errors() {
    let trace = unicode_trace();
    for serialized in [rvpredict::to_json(&trace), rvpredict::to_ndjson(&trace)] {
        let bytes = serialized.as_bytes();
        // The clean parse first: chunked ingestion reconstructs the trace.
        for chunk in [1usize, 2, 3, 7, 64] {
            let mut parser = rvpredict::StreamParser::new();
            for c in bytes.chunks(chunk) {
                parser.feed(c).unwrap();
            }
            parser.finish().unwrap();
            assert_eq!(
                rvpredict::Trace::from_data(parser.into_data()).len(),
                trace.len(),
                "chunk={chunk}"
            );
        }
        // Truncations at awkward places: inside the unicode-dense
        // metadata, inside a multi-byte code point, and near the tail.
        let mid_cp = bytes
            .iter()
            .position(|&b| b & 0xC0 == 0x80)
            .expect("multi-byte content present");
        for cut in [bytes.len() / 4, mid_cp, bytes.len() - 5] {
            let bad = &bytes[..cut];
            let whole_err = rvpredict::read_trace(bad).unwrap_err();
            for chunk in [1usize, 2, 3, 7, 64] {
                let mut parser = rvpredict::StreamParser::new();
                let err = (|| {
                    for c in bad.chunks(chunk) {
                        parser.feed(c)?;
                    }
                    parser.finish()
                })()
                .expect_err("truncated document fails");
                assert_eq!(err, whole_err, "error drifted at cut={cut} chunk={chunk}");
            }
        }
    }
}

/// The snippet-margin regression, pinned against the *independent*
/// whole-file parser: after the streaming parser drains consumed bytes,
/// it keeps a snippet-sized margin — which must never be cut mid-code-
/// point, or an error just past a unicode-dense frame lossy-decodes a
/// replacement character the whole-file snippet does not have. Sweeping
/// truncation points right after the unicode metadata catches exactly
/// that: message, offset *and snippet* must match [`rvpredict::from_json`]
/// byte for byte.
#[test]
fn snippet_margin_never_splits_code_points() {
    let json = rvpredict::to_json(&unicode_trace());
    // Truncate throughout the unicode-dense `var_names` tail, so errors
    // land within the retained margin of a multi-byte frame.
    let anchor = json.find("var_names").expect("metadata tail present");
    let mut compared = 0usize;
    for cut in anchor..json.len() {
        if !json.is_char_boundary(cut) {
            continue;
        }
        let bad = &json[..cut];
        let whole_err = rvpredict::from_json(bad).expect_err("truncated document fails");
        for chunk in [1usize, 3, 16] {
            let mut parser = rvpredict::StreamParser::new();
            let err = (|| {
                for c in bad.as_bytes().chunks(chunk) {
                    parser.feed(c)?;
                }
                parser.finish()
            })()
            .expect_err("truncated document fails");
            assert_eq!(err, whole_err, "cut={cut} chunk={chunk}");
        }
        compared += 1;
    }
    assert!(compared >= 30, "the sweep must cover real cuts: {compared}");
}

/// Zero-length chunks are no-ops at any point in the stream: interleaving
/// them between every byte changes neither the parse nor an error.
#[test]
fn empty_chunks_are_no_ops() {
    let trace = trace_of_len(40);
    let nd = rvpredict::to_ndjson(&trace);
    let mut parser = rvpredict::StreamParser::new();
    parser.feed(&[]).unwrap();
    for b in nd.as_bytes() {
        parser.feed(std::slice::from_ref(b)).unwrap();
        parser.feed(&[]).unwrap();
    }
    parser.finish().unwrap();
    assert_eq!(
        rvpredict::Trace::from_data(parser.into_data()).len(),
        trace.len()
    );
    // And on the error path: the diagnostics are unchanged.
    let bad = &nd.as_bytes()[..nd.len() - 5];
    let whole_err = rvpredict::read_trace(bad).unwrap_err();
    let mut parser = rvpredict::StreamParser::new();
    let err = (|| {
        for b in bad {
            parser.feed(&[])?;
            parser.feed(std::slice::from_ref(b))?;
        }
        parser.feed(&[])?;
        parser.finish()
    })()
    .expect_err("truncated document fails");
    assert_eq!(err, whole_err);
}

/// Library-level sweep of the same shapes across chunked feeding: every
/// prefix boundary of a small document parses identically whether fed
/// whole or byte by byte (the CLI cannot control chunking; this pins it).
#[test]
fn byte_by_byte_feeding_matches_whole_file_for_every_shape() {
    for trace in [
        TraceBuilder::new().finish(),
        trace_of_len(8),
        trace_of_len(40),
    ] {
        for serialized in [rvpredict::to_json(&trace), rvpredict::to_ndjson(&trace)] {
            let mut parser = rvpredict::StreamParser::new();
            for b in serialized.as_bytes() {
                parser.feed(std::slice::from_ref(b)).unwrap();
            }
            parser.finish().unwrap();
            let streamed = rvpredict::Trace::from_data(parser.into_data());
            let whole = match rvpredict::from_json(&serialized) {
                Ok(t) => t,
                // NDJSON is stream-only; compare against the JSON parse.
                Err(_) => rvpredict::from_json(&rvpredict::to_json(&trace)).unwrap(),
            };
            assert_eq!(streamed.len(), whole.len());
            assert_eq!(streamed.events(), whole.events());
        }
    }
}
