//! Property tests of the metrics subsystem: merge algebra over random
//! registries, solver-counter monotonicity, and conservation of the
//! per-COP retry accounting under injected timeouts.
//!
//! Case counts honor `PROPTEST_CASES` (the knob kept its name when the
//! suite moved off proptest); generation is seeded, so failures reproduce.

use std::sync::Arc;
use std::time::Duration;

use rvpredict::{
    Budget, DetectionReport, DetectorConfig, Fault, FaultPlan, Metrics, RaceDetector, ThreadId,
};
use rvpredict::{FormulaBuilder, Solver};
use rvsim::rng::SmallRng;
use rvtrace::TraceBuilder;

fn cases(default: usize) -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A random registry: a handful of counters drawn from a small name pool
/// (so merges actually collide on keys) plus histograms over values spread
/// across the full bucket range.
fn gen_metrics(rng: &mut SmallRng) -> Metrics {
    const NAMES: [&str; 5] = ["alpha", "beta", "gamma", "delta", "epsilon"];
    let mut m = Metrics::new();
    for _ in 0..rng.gen_range(0..6usize) {
        let name = NAMES[rng.gen_range(0..NAMES.len())];
        m.inc(name, rng.gen_range(0..1_000u64));
    }
    for _ in 0..rng.gen_range(0..4usize) {
        let name = NAMES[rng.gen_range(0..NAMES.len())];
        for _ in 0..rng.gen_range(0..8usize) {
            // Random magnitude first, so observations land in random
            // buckets rather than clustering near 2^64.
            let shift = rng.gen_range(0..64u32);
            m.observe(name, rng.next_u64() >> shift);
        }
    }
    m
}

fn merged(a: &Metrics, b: &Metrics) -> Metrics {
    let mut out = a.clone();
    out.merge(b);
    out
}

/// `Metrics::merge` is commutative and associative on the count-type
/// sections (counters and histograms) — the algebraic property the
/// parallel driver's deterministic merge relies on.
#[test]
fn metrics_merge_is_commutative_and_associative() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_4E7A);
    for case in 0..cases(64) {
        let a = gen_metrics(&mut rng);
        let b = gen_metrics(&mut rng);
        let c = gen_metrics(&mut rng);

        let ab = merged(&a, &b);
        let ba = merged(&b, &a);
        assert_eq!(
            ab.without_timings().to_json(),
            ba.without_timings().to_json(),
            "case {case}: merge is not commutative"
        );

        let ab_c = merged(&ab, &c);
        let bc = merged(&b, &c);
        let a_bc = merged(&a, &bc);
        assert_eq!(
            ab_c.without_timings().to_json(),
            a_bc.without_timings().to_json(),
            "case {case}: merge is not associative"
        );
    }
}

/// Merging preserves totals exactly: counter sums and histogram
/// count/sum/max are what you would get observing everything into one
/// registry.
#[test]
fn metrics_merge_conserves_totals() {
    let mut rng = SmallRng::seed_from_u64(0xC0_55E7);
    for case in 0..cases(64) {
        let a = gen_metrics(&mut rng);
        let b = gen_metrics(&mut rng);
        let m = merged(&a, &b);
        for (name, value) in m.counters() {
            assert_eq!(
                value,
                a.counter(name) + b.counter(name),
                "case {case}: counter `{name}` not conserved"
            );
        }
        for name in ["alpha", "beta", "gamma", "delta", "epsilon"] {
            let (ca, sa) = a.histogram(name).map_or((0, 0), |h| (h.count(), h.sum()));
            let (cb, sb) = b.histogram(name).map_or((0, 0), |h| (h.count(), h.sum()));
            let (cm, sm) = m.histogram(name).map_or((0, 0), |h| (h.count(), h.sum()));
            assert_eq!(cm, ca + cb, "case {case}: histogram `{name}` count");
            assert_eq!(sm, sa + sb, "case {case}: histogram `{name}` sum");
        }
    }
}

fn assert_monotone(earlier: &rvsmt::SatStats, later: &rvsmt::SatStats, what: &str) {
    assert!(later.decisions >= earlier.decisions, "{what}: decisions");
    assert!(
        later.propagations >= earlier.propagations,
        "{what}: propagations"
    );
    assert!(later.conflicts >= earlier.conflicts, "{what}: conflicts");
    assert!(later.restarts >= earlier.restarts, "{what}: restarts");
    assert!(
        later.learnt_clauses >= earlier.learnt_clauses,
        "{what}: learnt clauses"
    );
}

/// Solver effort counters are lifetime totals: across successive
/// `solve_assuming` calls on one incremental solver (the exact usage the
/// batch-mode per-COP profile capture relies on) they never decrease, so
/// `delta_since` is always well defined and non-negative.
#[test]
fn solver_counters_are_monotone_across_solves() {
    let mut rng = SmallRng::seed_from_u64(0x501_7E5);
    for case in 0..cases(32) {
        // A random order-constraint formula gated by selector bools, the
        // same shape the window encoder produces for batched COPs.
        let mut fb = FormulaBuilder::new();
        let ints: Vec<_> = (0..rng.gen_range(3..8usize))
            .map(|_| fb.int_var())
            .collect();
        let selectors: Vec<_> = (0..rng.gen_range(2..6usize))
            .map(|_| {
                let s = fb.bool_var();
                for _ in 0..rng.gen_range(1..4usize) {
                    // Distinct int vars, so the atom cannot simplify away
                    // and the selector is guaranteed to reach the CNF.
                    let xi = rng.gen_range(0..ints.len());
                    let yi = (xi + 1 + rng.gen_range(0..ints.len() - 1)) % ints.len();
                    let c = fb.lt(ints[xi], ints[yi]);
                    let gated = fb.implies(s, c);
                    fb.assert_term(gated);
                }
                s
            })
            .collect();
        let mut solver = Solver::new(&fb);
        let mut prev = solver.stats().sat;
        for round in 0..rng.gen_range(1..5usize) {
            let assumption = selectors[rng.gen_range(0..selectors.len())];
            solver.solve_assuming(&Budget::UNLIMITED, &[assumption]);
            let now = solver.stats().sat;
            assert_monotone(&prev, &now, &format!("case {case} round {round}"));
            let delta = now.delta_since(&prev);
            assert_eq!(delta.decisions, now.decisions - prev.decisions);
            assert_eq!(delta.conflicts, now.conflicts - prev.conflicts);
            prev = now;
        }
    }
}

fn detect(trace: &rvtrace::Trace, cfg: DetectorConfig) -> DetectionReport {
    RaceDetector::with_config(cfg).detect(trace)
}

/// Per-COP retry accounting conserves the verdict partition: under a fault
/// plan forcing timeouts, runs with and without `retry_split` solve the
/// same COPs, `sat + unsat + undecided == cops_solved` holds in both, every
/// rescue is a formerly-undecided COP, and nothing is double-counted —
/// at one worker and at four.
#[test]
fn retry_split_conserves_per_cop_accounting() {
    // The racy pair sits at the front so the half-window retry contains
    // both events; same-thread filler pads the window.
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let y = b.var("y");
    let t1 = ThreadId::MAIN;
    let t2 = b.fork(t1);
    b.write(t1, x, 1);
    b.read(t2, x, 1);
    for i in 0..8 {
        b.write(t1, y, i);
    }
    let trace = b.finish();

    let plan = Some(Arc::new(FaultPlan::new().inject(0, 0, Fault::Timeout)));
    for parallelism in [1usize, 4] {
        let without = detect(
            &trace,
            DetectorConfig {
                fault_plan: plan.clone(),
                parallelism,
                ..Default::default()
            },
        );
        let with = detect(
            &trace,
            DetectorConfig {
                fault_plan: plan.clone(),
                retry_split: true,
                parallelism,
                ..Default::default()
            },
        );
        for (tag, r) in [("without retry", &without), ("with retry", &with)] {
            let s = &r.stats;
            assert_eq!(
                s.sat + s.unsat + s.undecided,
                s.cops_solved,
                "jobs={parallelism} {tag}: verdict partition broken"
            );
            assert!(
                s.retry_rescued <= s.retried_cops,
                "jobs={parallelism} {tag}: more rescues than retries"
            );
        }
        // Same work either way: the retry re-solves, it does not add COPs.
        assert_eq!(
            without.stats.cops_solved, with.stats.cops_solved,
            "jobs={parallelism}: retry changed the COP count"
        );
        // Every rescue is one COP moving out of Undecided, exactly once.
        assert_eq!(
            with.stats.retry_rescued,
            without.stats.undecided - with.stats.undecided,
            "jobs={parallelism}: rescues not conserved"
        );
        assert_eq!(without.stats.retried_cops, 0, "jobs={parallelism}");
        assert_eq!(with.stats.retried_cops, 1, "jobs={parallelism}");
        assert_eq!(with.stats.retry_rescued, 1, "jobs={parallelism}");
        // The rescued verdict shows up in the metrics document too.
        let doc = with.to_metrics().without_timings().to_json();
        assert!(doc.contains("\"detector.retry_rescued\": 1"), "{doc}");
        assert!(doc.contains("\"detector.retried_cops\": 1"), "{doc}");
    }
}

/// The cascade's attribution counters partition `cops_solved` — one trace
/// exercising all three outcomes (a sync-free confirmation, a flag-handoff
/// refutation, a lock-split residue COP) lands exactly one COP in each
/// stage, at one worker and at four, with byte-identical count-type
/// metrics; with the cascade off every tier counter is zero.
#[test]
fn tier_counters_partition_and_reach_metrics() {
    let mut b = TraceBuilder::new();
    let h = b.var("h");
    let y = b.var("y");
    let f = b.var("f");
    let x2 = b.var("x2");
    let y2 = b.var("y2");
    let main = ThreadId::MAIN;
    let t2 = b.fork(main);
    let l = b.new_lock("l");
    let m = b.new_lock("m");
    // Confirmed: a sync-free racy pair Tier A replays.
    b.write(main, h, 1);
    b.write(t2, h, 2);
    // Refuted: a flag handoff whose branch-forced read entails the order.
    b.write(main, y, 1);
    b.acquire(main, l);
    b.write(main, f, 1);
    b.release(main, l);
    b.acquire(t2, l);
    b.read(t2, f, 1);
    b.release(t2, l);
    b.branch(t2);
    b.read(t2, y, 1);
    // Residue: a lock-split exchange only the solver can decide.
    b.acquire(main, m);
    b.write(main, x2, 7);
    b.write(main, y2, 1);
    b.release(main, m);
    b.acquire(t2, m);
    b.read(t2, y2, 1);
    b.release(t2, m);
    b.read(t2, x2, 7);
    let trace = b.finish();

    let mut docs = Vec::new();
    for parallelism in [1usize, 4] {
        let on = detect(
            &trace,
            DetectorConfig {
                parallelism,
                ..Default::default()
            },
        );
        let s = &on.stats;
        assert_eq!(
            s.tier_confirmed + s.tier_refuted + s.tier_residue,
            s.cops_solved,
            "jobs={parallelism}: tier partition broken"
        );
        assert_eq!(
            (s.tier_confirmed, s.tier_refuted, s.tier_residue),
            (1, 1, 1),
            "jobs={parallelism}: each stage decides its COP"
        );
        let doc = on.to_metrics().without_timings().to_json();
        assert!(doc.contains("\"detector.tiers.confirmed\": 1"), "{doc}");
        assert!(doc.contains("\"detector.tiers.refuted\": 1"), "{doc}");
        assert!(doc.contains("\"detector.tiers.residue\": 1"), "{doc}");
        docs.push(doc);

        let off = detect(
            &trace,
            DetectorConfig {
                parallelism,
                tiers: false,
                ..Default::default()
            },
        );
        let s = &off.stats;
        assert_eq!(
            (s.tier_confirmed, s.tier_refuted, s.tier_residue),
            (0, 0, 0),
            "jobs={parallelism}: cascade off must attribute nothing"
        );
        let doc = off.to_metrics().without_timings().to_json();
        assert!(doc.contains("\"detector.tiers.confirmed\": 0"), "{doc}");
        // The cascade must not change what is reported.
        assert_eq!(on.signatures(), off.signatures(), "jobs={parallelism}");
    }
    assert_eq!(
        docs[0], docs[1],
        "tier metrics drifted across worker counts"
    );
}

/// The solver budget knob still bounds retries deterministically: with a
/// conflict budget of 0 every real solve times out, and the report's
/// verdict partition still holds (nothing lost, nothing double-counted).
#[test]
fn zero_conflict_budget_keeps_partition_intact() {
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let t1 = ThreadId::MAIN;
    let t2 = b.fork(t1);
    for i in 0..6 {
        b.write(t1, x, i);
        b.read(t2, x, i);
    }
    let trace = b.finish();
    for retry in [false, true] {
        let report = detect(
            &trace,
            DetectorConfig {
                max_conflicts: Some(0),
                retry_split: retry,
                solver_timeout: Duration::from_secs(5),
                ..Default::default()
            },
        );
        let s = &report.stats;
        assert_eq!(
            s.sat + s.unsat + s.undecided,
            s.cops_solved,
            "retry={retry}"
        );
        assert!(s.retry_rescued <= s.retried_cops, "retry={retry}");
    }
}
