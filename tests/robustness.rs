//! Robustness of the ingestion pipeline and the CLI's degraded modes:
//! damaged trace files (truncated JSON, unknown event kinds, unbalanced
//! locks, torn reads) must produce clean errors in strict mode and usable
//! salvaged traces in lenient mode, and the binary's exit codes must
//! distinguish "no races" (0) from "races" (1), "bad input" (2) and
//! "incomplete verdict" (3).

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_rvpredict")
}

fn fixture(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("rvpredict-robustness-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("binary runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A trace with one cross-thread race plus one torn read: strict mode
/// rejects it, lenient mode drops the read and still proves the race.
const RACY_WITH_TORN_READ: &str = r#"{"events":[
  {"thread":0,"kind":{"Fork":{"child":1}},"loc":0},
  {"thread":0,"kind":{"Write":{"var":0,"value":1}},"loc":10},
  {"thread":1,"kind":"Begin","loc":1},
  {"thread":1,"kind":{"Read":{"var":0,"value":9}},"loc":2},
  {"thread":1,"kind":{"Read":{"var":0,"value":1}},"loc":11}
],"initial_values":{},"volatiles":[],"wait_links":[],
"loc_names":{"10":"writer","11":"reader"},"var_names":{"0":"x"}}"#;

/// Double acquire and double release of the same lock on one thread.
const UNBALANCED_LOCKS: &str = r#"{"events":[
  {"thread":0,"kind":{"Acquire":{"lock":0}},"loc":0},
  {"thread":0,"kind":{"Acquire":{"lock":0}},"loc":1},
  {"thread":0,"kind":{"Write":{"var":0,"value":1}},"loc":2},
  {"thread":0,"kind":{"Release":{"lock":0}},"loc":3},
  {"thread":0,"kind":{"Release":{"lock":0}},"loc":4}
],"initial_values":{},"volatiles":[],"wait_links":[],
"loc_names":{},"var_names":{}}"#;

// ------------------------------------------------------------ library level

#[test]
fn truncated_json_is_a_clean_error_with_position() {
    let input = "{\"events\":[{\"thread\":0,\"kind\":{\"Wri";
    let err = rvpredict::from_json(input).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("at byte"), "{msg}");
    assert!(msg.contains("near `"), "{msg}");
    // Lenient parsing fails identically: truncation is not salvageable.
    assert!(rvpredict::from_json_data(input).is_err());
}

#[test]
fn unknown_event_kind_is_a_clean_error() {
    let input = r#"{"events":[{"thread":0,"kind":{"Frobnicate":{"var":0}},"loc":0}],
        "initial_values":{},"volatiles":[],"wait_links":[],
        "loc_names":{},"var_names":{}}"#;
    let err = rvpredict::from_json(input).unwrap_err();
    assert!(err.to_string().contains("unknown event kind"), "{err}");
}

#[test]
fn unbalanced_locks_strict_rejects_lenient_salvages() {
    // Strict: the document parses, but the trace violates lock mutual
    // exclusion.
    let trace = rvpredict::from_json(UNBALANCED_LOCKS).unwrap();
    assert!(!rvpredict::check_consistency(&trace).is_empty());

    // Lenient: exactly the two offending events are dropped.
    let data = rvpredict::from_json_data(UNBALANCED_LOCKS).unwrap();
    let (salvaged, report) = rvpredict::salvage_trace(data);
    assert_eq!(salvaged.len(), 3);
    assert_eq!(report.dropped["acquire-held-lock"], 1);
    assert_eq!(report.dropped["release-without-acquire"], 1);
    assert_eq!(report.n_dropped(), 2);
    assert!(rvpredict::check_consistency(&salvaged).is_empty());
}

#[test]
fn torn_read_strict_rejects_lenient_salvages() {
    let trace = rvpredict::from_json(RACY_WITH_TORN_READ).unwrap();
    assert!(!rvpredict::check_consistency(&trace).is_empty());

    let data = rvpredict::from_json_data(RACY_WITH_TORN_READ).unwrap();
    let (salvaged, report) = rvpredict::salvage_trace(data);
    assert_eq!(salvaged.len(), 4);
    assert_eq!(report.dropped["inconsistent-read"], 1);
    // The salvaged sub-trace still carries the race.
    let report = rvpredict::RaceDetector::new().detect(&salvaged);
    assert_eq!(report.n_races(), 1);
}

// ----------------------------------------------------------------- CLI level

#[test]
fn cli_truncated_json_exits_2_with_position() {
    let path = fixture(
        "truncated.json",
        "{\"events\":[{\"thread\":0,\"kind\":{\"Wri",
    );
    let out = run(&[path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let e = stderr(&out);
    assert!(e.contains("error:"), "{e}");
    assert!(e.contains("at byte"), "{e}");
}

#[test]
fn cli_unknown_event_kind_exits_2() {
    let path = fixture(
        "unknown-kind.json",
        r#"{"events":[{"thread":0,"kind":"Frobnicate","loc":0}],
            "initial_values":{},"volatiles":[],"wait_links":[],
            "loc_names":{},"var_names":{}}"#,
    );
    let out = run(&[path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("unknown event kind"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn cli_inconsistent_trace_strict_exits_2_and_suggests_lenient() {
    let path = fixture("unbalanced.json", UNBALANCED_LOCKS);
    let out = run(&[path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let e = stderr(&out);
    assert!(e.contains("not sequentially consistent"), "{e}");
    assert!(e.contains("--lenient"), "{e}");
}

#[test]
fn cli_lenient_salvages_unbalanced_locks_and_exits_0() {
    let path = fixture("unbalanced-lenient.json", UNBALANCED_LOCKS);
    let out = run(&["--lenient", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let e = stderr(&out);
    assert!(e.contains("salvage: kept 3/5 events"), "{e}");
    assert!(e.contains("acquire-held-lock=1"), "{e}");
    assert!(e.contains("release-without-acquire=1"), "{e}");
}

#[test]
fn cli_lenient_salvage_still_finds_the_race() {
    let path = fixture("torn-read.json", RACY_WITH_TORN_READ);
    let out = run(&["--lenient", path.to_str().unwrap()]);
    // Races dominate: exit 1 even though events were dropped.
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("inconsistent-read=1"),
        "{}",
        stderr(&out)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 race(s)"), "{stdout}");
}

#[test]
fn cli_injected_timeout_forces_degraded_exit_3() {
    // Figure 1 has exactly one COP; forcing it to time out leaves no races
    // and one undecided verdict — completion without a full answer.
    let out = run(&["--demo", "--inject-fault", "0:0:timeout"]);
    assert_eq!(out.status.code(), Some(3), "stderr: {}", stderr(&out));
    let e = stderr(&out);
    assert!(e.contains("race freedom is not established"), "{e}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 race(s)"), "{stdout}");
}

#[test]
fn cli_injected_panic_fails_window_and_exits_3() {
    let out = run(&["--demo", "--inject-fault", "0:0:panic"]);
    assert_eq!(out.status.code(), Some(3), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("1 window(s) failed"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn cli_bad_fault_spec_is_a_usage_error() {
    for spec in ["nonsense", "0:0:frob", "x:0:panic", "0"] {
        let out = run(&["--demo", "--inject-fault", spec]);
        assert_eq!(out.status.code(), Some(2), "spec {spec}");
    }
}

#[test]
fn cli_retry_split_flag_is_accepted() {
    // Without an injected fault nothing times out; the flag must simply
    // not change the verdict on the demo trace.
    let out = run(&["--demo", "--retry-split"]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(String::from_utf8_lossy(&out.stdout).contains("1 race(s)"));
}
