//! Tier-soundness tests for the pre-solver cascade: each screen must fire
//! on a trace hand-built for it, the entailment algebra must order exactly
//! what the formula entails, and every tier verdict must agree with the
//! solver oracle.

use rvpredict::{
    ConsistencyMode, Cop, DetectorConfig, RaceDetector, TierAnalysis, TierDecision, TraceBuilder,
    ViewExt,
};

fn config(tiers: bool) -> DetectorConfig {
    DetectorConfig {
        parallelism: 1,
        tiers,
        ..Default::default()
    }
}

// ------------------------------------------------------------ Tier A

/// A sync-free racy pair: Tier A must confirm it by replay, with the
/// solver never invoked on the screen's behalf (`solver_totals` sums the
/// per-COP deltas, and a tier confirmation has none).
#[test]
fn tier_a_confirms_race_with_zero_recorded_solves() {
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let t2 = b.fork(rvpredict::ThreadId::MAIN);
    b.write(rvpredict::ThreadId::MAIN, x, 1);
    b.read(t2, x, 1);
    let trace = b.finish();

    let report = RaceDetector::with_config(config(true)).detect(&trace);
    assert_eq!(report.n_races(), 1, "{report}");
    assert_eq!(report.stats.tier_confirmed, 1, "{report}");
    assert_eq!(report.stats.tier_residue, 0, "{report}");
    assert_eq!(
        report.stats.solver_totals.solves, 0,
        "a tier-A confirmation must not record solver effort"
    );
    // The cascade must not change what is reported.
    let baseline = RaceDetector::with_config(config(false)).detect(&trace);
    assert_eq!(report.signatures(), baseline.signatures());
    assert_eq!(report.races[0].schedule, baseline.races[0].schedule);
}

// ------------------------------------------------------------ Tier B

/// One flag-handoff block (the BENCH_pr6 pattern): the payload COP
/// survives the quick check but the branch-forced flag read entails
/// `w y → w f → r f → r y` in every sound reordering. Tier B must refute
/// it without a solver call, matching the solver's `Unsat`.
#[test]
fn tier_b_refutes_flag_handoff_pair() {
    let mut b = TraceBuilder::new();
    let y = b.var("y");
    let f = b.var("f");
    let main = rvpredict::ThreadId::MAIN;
    let t2 = b.fork(main);
    let l = b.new_lock("l");
    b.write(main, y, 1);
    b.acquire(main, l);
    b.write(main, f, 1);
    b.release(main, l);
    b.acquire(t2, l);
    b.read(t2, f, 1);
    b.release(t2, l);
    b.branch(t2);
    b.read(t2, y, 1);
    let trace = b.finish();

    let report = RaceDetector::with_config(config(true)).detect(&trace);
    assert_eq!(report.n_races(), 0, "{report}");
    assert!(report.stats.tier_refuted >= 1, "{report}");
    assert_eq!(report.stats.tier_residue, 0, "{report}");
    assert_eq!(report.stats.solver_totals.solves, 0, "{report}");

    let baseline = RaceDetector::with_config(config(false)).detect(&trace);
    assert_eq!(report.stats.unsat, baseline.stats.unsat);
    assert_eq!(report.stats.cops_solved, baseline.stats.cops_solved);
}

// ------------------------------------------------------------ Residue

/// A COP neither screen can decide must reach the solver: the lock-split
/// exchange needs a reordering that swaps two critical sections, which
/// Tier A's prefix-plus-adjacent replay cannot produce and Tier B cannot
/// refute. The solver still proves it a race, so the verdicts agree.
#[test]
fn residue_cop_reaches_the_solver() {
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let y = b.var("y");
    let main = rvpredict::ThreadId::MAIN;
    let l = b.new_lock("l");
    let t2 = b.fork(main);
    b.acquire(main, l);
    b.write(main, x, 7);
    b.write(main, y, 1);
    b.release(main, l);
    b.acquire(t2, l);
    b.read(t2, y, 1);
    b.release(t2, l);
    b.read(t2, x, 7);
    let trace = b.finish();

    let with_tiers = RaceDetector::with_config(config(true)).detect(&trace);
    assert!(with_tiers.stats.tier_residue >= 1, "{with_tiers}");
    let baseline = RaceDetector::with_config(config(false)).detect(&trace);
    assert_eq!(with_tiers.signatures(), baseline.signatures());
    assert_eq!(with_tiers.stats.sat, baseline.stats.sat);
    assert_eq!(with_tiers.stats.unsat, baseline.stats.unsat);
}

/// With the cascade on, every solved COP is attributed to exactly one
/// stage; with it off, no COP is attributed to any.
#[test]
fn tier_counters_partition_cops_solved() {
    let w = rvpredict::workloads::figures::figure1();
    let on = RaceDetector::with_config(config(true)).detect(&w.trace);
    assert_eq!(
        on.stats.tier_confirmed + on.stats.tier_refuted + on.stats.tier_residue,
        on.stats.cops_solved,
        "{on}"
    );
    let off = RaceDetector::with_config(config(false)).detect(&w.trace);
    assert_eq!(
        off.stats.tier_confirmed + off.stats.tier_refuted + off.stats.tier_residue,
        0,
        "{off}"
    );
    assert_eq!(on.signatures(), off.signatures());
}

// ------------------------------------- entailment algebra (Tier B base)

/// Program order, fork and join edges order exactly what MHB orders.
#[test]
fn entailment_orders_program_order_fork_and_join() {
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let main = rvpredict::ThreadId::MAIN;
    let t2 = b.fork(main);
    let w1 = b.write(main, x, 1);
    let w2 = b.write(t2, x, 2);
    b.end(t2);
    b.join(main, t2);
    let w3 = b.write(main, x, 3);
    let trace = b.finish();
    let views = trace.windows(trace.len());
    let mut tiers = TierAnalysis::new(&views[0], ConsistencyMode::ControlFlow, true);

    // Program order within a thread.
    assert!(tiers.entailed_before(w1, w3));
    assert!(!tiers.entailed_before(w3, w1));
    // The fork edge orders the parent's pre-fork events before the child.
    assert!(!tiers.entailed_before(w1, w2), "post-fork writes race");
    // The join edge orders the whole child before the parent's tail.
    assert!(tiers.entailed_before(w2, w3));
    assert!(!tiers.entailed_before(w3, w2));
    // Entailed-ordered pairs are refuted, concurrent ones are not refuted.
    assert_eq!(tiers.decide(&Cop::new(w2, w3)), TierDecision::Refuted);
    assert_ne!(tiers.decide(&Cop::new(w1, w2)), TierDecision::Refuted);
}

/// A wait/notify link orders the notifier's past before the waiter's
/// future: `release < notify < re-acquire` are entailed edges.
#[test]
fn entailment_orders_across_wait_links() {
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let main = rvpredict::ThreadId::MAIN;
    let l = b.new_lock("l");
    let t2 = b.fork(main);
    b.acquire(t2, l);
    let token = b.wait_begin(t2, l);
    let wx = b.write(main, x, 1);
    b.acquire(main, l);
    let n = b.notify(main, l);
    b.release(main, l);
    b.wait_end(token, Some(n));
    let rx = b.read(t2, x, 1);
    b.release(t2, l);
    let trace = b.finish();
    let views = trace.windows(trace.len());
    let mut tiers = TierAnalysis::new(&views[0], ConsistencyMode::ControlFlow, true);

    // The write flows to the post-wait read through the wait link.
    assert!(tiers.entailed_before(wx, rx));
    assert_eq!(tiers.decide(&Cop::new(wx, rx)), TierDecision::Refuted);
}

/// A lock disjunction whose one arm is contradicted by entailed order
/// collapses to the other arm: with whole-trace consistency the flag read
/// pins the second critical section after the first, so the sections'
/// `release → acquire` edge becomes entailed.
#[test]
fn entailment_discharges_one_sided_lock_disjunctions() {
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let flag = b.var("flag");
    let main = rvpredict::ThreadId::MAIN;
    let l = b.new_lock("l");
    let t2 = b.fork(main);
    let a1 = b.acquire(main, l).unwrap();
    b.write(main, x, 1);
    b.write(main, flag, 1);
    let r1 = b.release(main, l).unwrap();
    let a2 = b.acquire(t2, l).unwrap();
    b.read(t2, flag, 1);
    b.read(t2, x, 1);
    b.release(t2, l).unwrap();
    let trace = b.finish();
    let views = trace.windows(trace.len());
    let mut tiers = TierAnalysis::new(&views[0], ConsistencyMode::WholeTrace, true);

    // `rel2 < acq1` would cycle through the flag's unique justifier, so
    // the disjunction's surviving arm `rel1 < acq2` is entailed.
    assert!(tiers.entailed_before(r1, a2));
    assert!(tiers.entailed_before(a1, a2));
}
