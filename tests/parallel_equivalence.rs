//! Determinism of the parallel detection driver: for every simulator
//! workload, a run with one worker and a run with four workers must produce
//! identical race signature sets, identical per-signature race counts, and
//! identical verdict counters — everything except wall-clock timing.
//!
//! Also pins the cross-window deduplication contract: a signature that
//! races in many windows is reported exactly once, whatever the thread
//! count (the merge loop suppresses later windows' duplicates, including
//! speculative solves that finished before the confirming window merged).

use std::collections::BTreeMap;

use rvpredict::{DetectionReport, DetectorConfig, RaceDetector, RaceSignature, ThreadId, Trace};
use rvtrace::TraceBuilder;

fn detect(trace: &Trace, parallelism: usize, window_size: usize) -> DetectionReport {
    let cfg = DetectorConfig {
        parallelism,
        window_size,
        ..Default::default()
    };
    RaceDetector::with_config(cfg).detect(trace)
}

/// Race count per signature — the dedup-sensitive view of a report.
fn per_signature_counts(report: &DetectionReport) -> BTreeMap<RaceSignature, usize> {
    let mut counts = BTreeMap::new();
    for race in &report.races {
        *counts.entry(race.signature).or_insert(0) += 1;
    }
    counts
}

/// The timing-free slice of the stats, comparable across thread counts.
fn counters(report: &DetectionReport) -> [usize; 8] {
    let s = &report.stats;
    [
        s.windows,
        s.pairs_considered,
        s.qc_signatures,
        s.cops_solved,
        s.sat,
        s.unsat,
        s.undecided,
        s.witness_failures,
    ]
}

fn assert_equivalent(name: &str, serial: &DetectionReport, parallel: &DetectionReport) {
    assert_eq!(
        serial.signatures(),
        parallel.signatures(),
        "{name}: signature sets differ between 1 and 4 workers"
    );
    assert_eq!(
        per_signature_counts(serial),
        per_signature_counts(parallel),
        "{name}: per-signature race counts differ"
    );
    assert_eq!(
        counters(serial),
        counters(parallel),
        "{name}: verdict counters differ"
    );
    // Full determinism: the same COPs, windows and witness schedules.
    assert_eq!(serial.races.len(), parallel.races.len(), "{name}");
    for (a, b) in serial.races.iter().zip(&parallel.races) {
        assert_eq!(a.cop, b.cop, "{name}: COP differs");
        assert_eq!(a.window, b.window, "{name}: window differs");
        assert_eq!(
            a.schedule.0, b.schedule.0,
            "{name}: witness schedule differs"
        );
    }
}

/// Every sim workload, default (whole-trace) window.
#[test]
fn workloads_agree_across_thread_counts() {
    for w in rvsim::workloads::small_suite() {
        let serial = detect(&w.trace, 1, 10_000);
        let parallel = detect(&w.trace, 4, 10_000);
        assert_equivalent(&w.name, &serial, &parallel);
    }
}

/// Every sim workload again with small windows, so multiple window
/// outcomes actually merge concurrently and cross-window dedup is live.
#[test]
fn windowed_workloads_agree_across_thread_counts() {
    for w in rvsim::workloads::small_suite() {
        let wsize = (w.trace.len() / 4).max(8);
        let serial = detect(&w.trace, 1, wsize);
        let parallel = detect(&w.trace, 4, wsize);
        assert!(
            serial.stats.windows >= 2,
            "{}: want multiple windows",
            w.name
        );
        assert_equivalent(&w.name, &serial, &parallel);
    }
}

/// A trace whose one racy signature recurs in every window: ~10 windows of
/// 50 events, two unsynchronized threads hammering the same two source
/// locations. The race must be reported exactly once — the window-ordered
/// merge suppresses every later window's duplicate, no matter how many
/// workers solved speculatively.
#[test]
fn cross_window_duplicate_signature_reported_exactly_once() {
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let t1 = ThreadId::MAIN;
    let t2 = b.fork(t1);
    let lw = b.loc("hot-write");
    let lr = b.loc("hot-read");
    // ~500 events: alternate a t1 write and a t2 read of the same value so
    // the observed trace is consistent, always at the same two locations.
    for i in 0..248 {
        b.write_at(t1, x, i, lw);
        b.read_at(t2, x, i, lr);
    }
    let trace = b.finish();
    assert!(trace.len() >= 490);

    for parallelism in [1, 4] {
        let report = detect(&trace, parallelism, 50);
        assert!(
            report.stats.windows >= 9,
            "got {} windows",
            report.stats.windows
        );
        assert_eq!(
            report.n_races(),
            1,
            "parallelism={parallelism}: duplicate signature must collapse to one report"
        );
        let sig = report.races[0].signature;
        assert_eq!(sig, RaceSignature::new(lw, lr));
        // The surviving report comes from the first window that confirmed
        // the race.
        assert_eq!(report.races[0].window.start, 0);
    }

    // Per-window duplicates are real races when dedup is off — the merge
    // must not drop anything then.
    let cfg = DetectorConfig {
        parallelism: 4,
        window_size: 50,
        dedup_signatures: false,
        ..Default::default()
    };
    let undeduped = RaceDetector::with_config(cfg).detect(&trace);
    assert!(undeduped.n_races() > 1);
}

/// The timing-stripped metrics document — every counter and every
/// histogram the report folds into [`rvpredict::Metrics`] — must render
/// byte-identically at 1, 2, 4 and 8 workers. This is the `--metrics`
/// determinism contract from DESIGN.md's Observability section, tested at
/// the library layer (the CLI-level test lives in `tests/cli.rs`).
#[test]
fn metrics_json_is_byte_identical_across_thread_counts() {
    for w in rvsim::workloads::small_suite() {
        let wsize = (w.trace.len() / 4).max(8);
        let docs: Vec<String> = [1usize, 2, 4, 8]
            .into_iter()
            .map(|parallelism| {
                detect(&w.trace, parallelism, wsize)
                    .to_metrics()
                    .without_timings()
                    .to_json()
            })
            .collect();
        for (i, doc) in docs.iter().enumerate().skip(1) {
            assert_eq!(
                &docs[0],
                doc,
                "{}: metrics JSON differs between 1 worker and {} workers",
                w.name,
                [1, 2, 4, 8][i]
            );
        }
        // The document carries real content, not an empty shell. The
        // per-COP histograms only exist once at least one COP was solved.
        assert!(docs[0].contains("\"detector.cops_solved\""), "{}", docs[0]);
        assert!(docs[0].contains("\"solver.decisions\""), "{}", docs[0]);
        if !docs[0].contains("\"detector.cops_solved\": 0,") {
            assert!(
                docs[0].contains("\"solver.conflicts_per_cop\""),
                "{}",
                docs[0]
            );
        }
        // Timings were stripped: the section renders empty.
        assert!(docs[0].contains("\"timings_us\": {}"), "{}", docs[0]);
    }
}

/// Determinism must survive *faults*: with a plan injecting a worker
/// panic, a forced timeout, and an encode error at fixed (window, COP)
/// coordinates, the merged report — races, failed windows, undecided
/// breakdown, every counter — renders byte-identically at 1, 2, 4 and 8
/// workers.
#[test]
fn fault_injected_workload_agrees_across_thread_counts() {
    use rvpredict::{Fault, FaultPlan};
    use std::sync::Arc;

    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let y = b.var("y");
    let t1 = ThreadId::MAIN;
    let t2 = b.fork(t1);
    let lw = b.loc("w");
    let lr = b.loc("r");
    let lw2 = b.loc("w2");
    let lr2 = b.loc("r2");
    // Two recurring racy signatures across ~10 windows of 48 events.
    for i in 0..120 {
        b.write_at(t1, x, i, lw);
        b.read_at(t2, x, i, lr);
        b.write_at(t2, y, i, lw2);
        b.read_at(t1, y, i, lr2);
    }
    let trace = b.finish();

    let plan = Arc::new(
        FaultPlan::new()
            .inject(0, 1, Fault::Timeout)
            .inject(2, 0, Fault::Panic)
            .inject(4, 0, Fault::EncodeError)
            .inject(7, 1, Fault::Panic),
    );
    let summaries: Vec<(String, String)> = [1usize, 2, 4, 8]
        .into_iter()
        .map(|parallelism| {
            let cfg = DetectorConfig {
                parallelism,
                window_size: 48,
                fault_plan: Some(plan.clone()),
                ..Default::default()
            };
            let report = RaceDetector::with_config(cfg).detect(&trace);
            assert_eq!(report.stats.failed_windows, 2, "jobs={parallelism}");
            assert!(report.is_degraded(), "jobs={parallelism}");
            let metrics = report.to_metrics().without_timings().to_json();
            (report.deterministic_summary(), metrics)
        })
        .collect();
    for (i, s) in summaries.iter().enumerate().skip(1) {
        assert_eq!(
            &summaries[0].0,
            &s.0,
            "fault-injected report differs between 1 worker and {} workers",
            [1, 2, 4, 8][i]
        );
        assert_eq!(
            &summaries[0].1,
            &s.1,
            "fault-injected metrics JSON differs between 1 worker and {} workers",
            [1, 2, 4, 8][i]
        );
    }
    // The degraded run's metrics still record the failure breakdown.
    assert!(summaries[0].1.contains("\"detector.failed_windows\": 2"));
}
