//! Oracle-arbitered differential suite for dependence-bounded windows
//! (`--window-mode cone`, PR 8): on small traces whose racing pairs sit
//! astride window boundaries, the brute-force maximal-causal-model oracle
//! is the ground truth, and
//!
//! * every race cone mode reports is oracle-confirmed (soundness survives
//!   the extended views);
//! * every oracle race is reported by cone mode (the straddle pass
//!   restores the maximality that fixed windows forfeit at boundaries);
//! * every race fixed mode *misses* relative to cone mode is an
//!   oracle-confirmed race — the cone-mode surplus is exactly the real
//!   boundary-straddling races, never noise;
//! * every cone-mode witness schedule re-validates against the §2 axioms
//!   on the extended view the race was attributed to.
//!
//! The generator forces straddling by construction: window sizes far
//! smaller than the trace, and at most one access per (thread, variable,
//! kind) so every conflicting pair is visible to the per-thread
//! last-access summaries the straddle enumeration reads.

use std::collections::BTreeSet;

use rvcore::oracle_races;
use rvpredict::{
    check_schedule, DetectorConfig, RaceDetector, RaceSignature, ThreadId, Trace, TraceBuilder,
    ViewExt, WindowBoundary, WindowMode,
};
use rvsim::rng::SmallRng;
use rvsim::stmts::*;
use rvsim::{execute, ExecConfig, Expr, GlobalId, Local, LockRef, Outcome, ProcId, Program, Stmt};

#[derive(Debug, Clone, Copy)]
enum Op {
    Write(u32, i64),
    Read(u32),
    Guarded(u32, u32),
    Locked(u32, u32),
}

/// Random per-thread op lists with at most one access per
/// (variable, kind) in each thread: the straddle candidate enumeration
/// keys on per-thread last-access summaries, so repeated same-kind
/// accesses from one thread would shadow earlier program points and the
/// oracle-equality assertion would test the generator, not the detector.
fn gen_ops(rng: &mut SmallRng) -> Vec<Vec<Op>> {
    (0..rng.gen_range(2..4usize))
        .map(|_| {
            let mut written = [false; 2];
            let mut read = [false; 2];
            let mut ops = Vec::new();
            for _ in 0..rng.gen_range(1..4usize) {
                let v = rng.gen_range(0..2u32);
                let op = match rng.gen_range(0..4u32) {
                    0 => Op::Write(v, rng.gen_range(0..2i64)),
                    1 => Op::Read(v),
                    2 => Op::Guarded(v, rng.gen_range(0..2u32)),
                    _ => Op::Locked(v, rng.gen_range(0..2u32)),
                };
                let (needs_read, writes) = match op {
                    Op::Write(v, _) | Op::Locked(v, _) => (None, Some(v)),
                    Op::Read(v) => (Some(v), None),
                    Op::Guarded(r, w) => (Some(r), Some(w)),
                };
                if needs_read.is_some_and(|v| read[v as usize])
                    || writes.is_some_and(|v| written[v as usize])
                {
                    continue;
                }
                if let Some(v) = needs_read {
                    read[v as usize] = true;
                }
                if let Some(v) = writes {
                    written[v as usize] = true;
                }
                ops.push(op);
            }
            ops
        })
        .collect()
}

fn build(workers: &[Vec<Op>]) -> Program {
    let r = Local(0);
    let body = |ops: &[Op]| -> Vec<Stmt> {
        let mut out = Vec::new();
        for op in ops {
            match *op {
                Op::Write(v, val) => out.push(store(GlobalId(v), val.into())),
                Op::Read(v) => out.push(load(r, GlobalId(v))),
                Op::Guarded(v, w) => out.extend([
                    load(r, GlobalId(v)),
                    if_(
                        Expr::eq(r.into(), 0.into()),
                        vec![store(GlobalId(w), 1.into())],
                        vec![],
                    ),
                ]),
                Op::Locked(v, l) => out.extend([
                    lock(LockRef(l)),
                    store(GlobalId(v), 1.into()),
                    unlock(LockRef(l)),
                ]),
            }
        }
        out
    };
    let procs: Vec<Vec<Stmt>> = workers.iter().map(|w| body(w)).collect();
    let mut main: Vec<Stmt> = (0..procs.len() as u32).map(ProcId).map(fork).collect();
    main.extend((0..procs.len() as u32).map(ProcId).map(join));
    Program::new(vec![scalar("v0", 0), scalar("v1", 0)], 2, main, procs)
}

/// Signature set a detection run reported.
fn sigs(report: &rvpredict::DetectionReport) -> BTreeSet<RaceSignature> {
    report.signatures().into_iter().collect()
}

/// Re-validates every witness on the view the race was attributed to —
/// for straddling races that is the *extended* view (`race.window` is the
/// grown range), rebuilt here from scratch via the boundary recurrence.
fn assert_witnesses_revalidate(trace: &Trace, report: &rvpredict::DetectionReport) {
    assert_eq!(report.stats.witness_failures, 0);
    for race in &report.races {
        let mut boundary = WindowBoundary::initial(trace);
        boundary.advance(trace.events(), 0..race.window.start);
        let view = boundary.view(trace, race.window.clone());
        assert_eq!(
            check_schedule(&view, &race.schedule),
            Ok(()),
            "witness must re-validate on the attributed view {:?} of trace {:?}",
            race.window,
            trace.events()
        );
        let n = race.schedule.0.len();
        assert_eq!(race.schedule.0[n - 2], race.cop.first);
        assert_eq!(race.schedule.0[n - 1], race.cop.second);
    }
}

/// The differential harness proper: randomized small traces, tiny
/// windows, oracle as arbiter. Fixed mode must stay sound-but-blind at
/// boundaries; cone mode must agree with the oracle exactly.
#[test]
fn cone_mode_agrees_with_oracle_where_fixed_goes_blind() {
    let mut rng = SmallRng::seed_from_u64(0xB0DA);
    // `PROPTEST_CASES` kept its name when the suite moved off proptest.
    let cases: usize = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let mut checked = 0;
    let mut fixed_missed_somewhere = false;
    let mut straddled_somewhere = false;
    for _attempt in 0..cases * 40 {
        if checked == cases {
            break;
        }
        let workers = gen_ops(&mut rng);
        let program = build(&workers);
        let seed = rng.gen_range(0..400u64);
        let exec = execute(&program, &ExecConfig::seeded(seed)).unwrap();
        if exec.outcome != Outcome::Completed || exec.trace.len() > 18 {
            continue;
        }
        checked += 1;
        let trace = &exec.trace;
        let real: BTreeSet<RaceSignature> = oracle_races(&trace.full_view(), 18)
            .into_iter()
            .map(|cop| RaceSignature::of_cop(trace, cop))
            .collect();
        for window in [4usize, 7] {
            let cfg = |mode| DetectorConfig {
                window_size: window,
                window_mode: mode,
                parallelism: 1,
                ..Default::default()
            };
            let cone_report = RaceDetector::with_config(cfg(WindowMode::Cone)).detect(trace);
            let fixed_report = RaceDetector::with_config(cfg(WindowMode::Fixed)).detect(trace);
            assert_eq!(
                cone_report.stats.undecided,
                0,
                "small traces must decide fully: {:?}",
                trace.events()
            );
            let cone = sigs(&cone_report);
            let fixed = sigs(&fixed_report);

            // Soundness: cone ⊆ oracle. Restored maximality: oracle ⊆ cone.
            assert_eq!(
                cone,
                real,
                "cone mode (window {window}) disagrees with the oracle on trace {:?}",
                trace.events()
            );
            // Fixed mode stays sound; whatever it misses is a real race.
            for sig in &fixed {
                assert!(
                    real.contains(sig),
                    "fixed mode reported a non-race {} on trace {:?}",
                    sig.display(trace),
                    trace.events()
                );
            }
            for missed in real.difference(&fixed) {
                fixed_missed_somewhere = true;
                assert!(
                    cone.contains(missed),
                    "fixed-mode miss {} not recovered by cone mode on trace {:?}",
                    missed.display(trace),
                    trace.events()
                );
            }
            if cone_report.stats.straddle_races > 0 {
                straddled_somewhere = true;
            }
            assert_witnesses_revalidate(trace, &cone_report);
        }
    }
    assert_eq!(checked, cases, "not enough small completed executions");
    assert!(
        fixed_missed_somewhere,
        "the workload never forced a boundary-straddling race"
    );
    assert!(
        straddled_somewhere,
        "no cone run ever attributed a race to the straddle pass"
    );
}

/// Deterministic regression: a single racing pair placed astride a window
/// boundary. Fixed mode misses it; the miss is oracle-confirmed; cone
/// mode reports it with a revalidating witness at every worker count.
#[test]
fn forced_straddle_is_oracle_confirmed_and_cone_reported() {
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let pad = b.var("pad");
    let t1 = ThreadId::MAIN;
    let t2 = b.fork(t1);
    b.write(t1, x, 1);
    for i in 0..8i64 {
        b.write(t1, pad, i); // same-thread filler pushes the read across
    }
    b.read(t2, x, 1);
    let trace = b.finish();

    let real: BTreeSet<RaceSignature> = oracle_races(&trace.full_view(), 18)
        .into_iter()
        .map(|cop| RaceSignature::of_cop(&trace, cop))
        .collect();
    assert_eq!(real.len(), 1, "the pair races under the maximal model");

    for window in [3usize, 4, 5] {
        let fixed = RaceDetector::with_config(DetectorConfig {
            window_size: window,
            window_mode: WindowMode::Fixed,
            ..Default::default()
        })
        .detect(&trace);
        assert_eq!(
            fixed.n_races(),
            0,
            "window {window} keeps the pair apart in fixed mode"
        );
        for jobs in [1usize, 2, 4, 8] {
            let cone = RaceDetector::with_config(DetectorConfig {
                window_size: window,
                window_mode: WindowMode::Cone,
                parallelism: jobs,
                ..Default::default()
            })
            .detect(&trace);
            assert_eq!(sigs(&cone), real, "window {window} jobs {jobs}");
            assert_eq!(cone.stats.straddle_races, 1);
            assert_witnesses_revalidate(&trace, &cone);
        }
    }
}

/// The spill-budget degradation contract, end to end: with a budget too
/// small to reach the straddling partner the race is *not* reported (no
/// truncated-view guessing), the COP surfaces as undecided
/// (boundary-budget), and the run degrades honestly instead of claiming
/// race freedom.
#[test]
fn starved_spill_budget_degrades_instead_of_guessing() {
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let pad = b.var("pad");
    let t1 = ThreadId::MAIN;
    let t2 = b.fork(t1);
    b.write(t1, x, 1);
    for i in 0..20i64 {
        b.write(t1, pad, i);
    }
    b.read(t2, x, 1);
    let trace = b.finish();

    let report = RaceDetector::with_config(DetectorConfig {
        window_size: 4,
        window_mode: WindowMode::Cone,
        spill_budget: 0,
        ..Default::default()
    })
    .detect(&trace);
    assert_eq!(report.n_races(), 0);
    assert!(report.stats.boundary_over_budget >= 1, "{report}");
    assert!(report.stats.undecided >= 1);
    assert!(report.is_degraded(), "race freedom must not be claimed");
}
