//! Property tests of the trace substrate over seeded random programs: the
//! interpreter only ever produces consistent traces, JSON round-trips, and
//! windowing agrees with the full view.

use rvpredict::{
    check_consistency, check_schedule, from_json, to_json, EventId, Schedule, ThreadId, Trace,
    TraceBuilder, ViewExt,
};
use rvsim::rng::SmallRng;
use rvsim::stmts::*;
use rvsim::{execute, ExecConfig, Expr, GlobalId, Local, LockRef, ProcId, Program, Stmt};

#[derive(Debug, Clone)]
enum A {
    W(u32, i64),
    R(u32),
    L(u32),
    If(u32),
}

fn gen_case(rng: &mut SmallRng) -> (Vec<Vec<A>>, u64) {
    let workers = (0..rng.gen_range(1..4usize))
        .map(|_| {
            (0..rng.gen_range(1..6usize))
                .map(|_| match rng.gen_range(0..4u32) {
                    0 => A::W(rng.gen_range(0..3u32), rng.gen_range(0..3i64)),
                    1 => A::R(rng.gen_range(0..3u32)),
                    2 => A::L(rng.gen_range(0..2u32)),
                    _ => A::If(rng.gen_range(0..3u32)),
                })
                .collect()
        })
        .collect();
    (workers, rng.gen_range(0..500u64))
}

fn run(workers: &[Vec<A>], seed: u64) -> Option<Trace> {
    let r = Local(0);
    let body = |ops: &[A]| -> Vec<Stmt> {
        let mut out = Vec::new();
        for op in ops {
            match *op {
                A::W(v, x) => out.push(store(GlobalId(v), x.into())),
                A::R(v) => out.push(load(r, GlobalId(v))),
                A::L(l) => out.extend([
                    lock(LockRef(l)),
                    store(GlobalId(0), 1.into()),
                    unlock(LockRef(l)),
                ]),
                A::If(v) => out.extend([
                    load(r, GlobalId(v)),
                    if_(
                        Expr::eq(r.into(), 0.into()),
                        vec![store(GlobalId(v), 2.into())],
                        vec![],
                    ),
                ]),
            }
        }
        out
    };
    let procs: Vec<Vec<Stmt>> = workers.iter().map(|w| body(w)).collect();
    let mut main: Vec<Stmt> = (0..procs.len() as u32).map(ProcId).map(fork).collect();
    main.extend((0..procs.len() as u32).map(ProcId).map(join));
    let program = Program::new(
        vec![scalar("v0", 0), scalar("v1", 0), scalar("v2", 0)],
        2,
        main,
        procs,
    );
    let exec = execute(&program, &ExecConfig::seeded(seed)).ok()?;
    Some(exec.trace)
}

/// Drives `cases` generated traces through `check`. `PROPTEST_CASES`
/// overrides the count (the knob kept its name when the suite moved off
/// proptest).
fn for_traces(master_seed: u64, cases: usize, mut check: impl FnMut(&mut SmallRng, &Trace)) {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(cases);
    let mut rng = SmallRng::seed_from_u64(master_seed);
    let mut checked = 0;
    for _attempt in 0..cases * 20 {
        if checked == cases {
            break;
        }
        let (workers, seed) = gen_case(&mut rng);
        let Some(trace) = run(&workers, seed) else {
            continue;
        };
        checked += 1;
        check(&mut rng, &trace);
    }
    assert_eq!(checked, cases, "not enough generated traces");
}

/// Interpreter output is always sequentially consistent, whatever the
/// schedule.
#[test]
fn interpreter_traces_consistent() {
    for_traces(0xC0515, 64, |_, trace| {
        assert!(check_consistency(trace).is_empty());
    });
}

/// JSON round-trips preserve events, stats and metadata.
#[test]
fn json_roundtrip() {
    for_traces(0x15ea1, 64, |_, trace| {
        let json = to_json(trace);
        let back: Trace = from_json(&json).unwrap();
        assert_eq!(back.events(), trace.events());
        assert_eq!(back.stats(), trace.stats());
        assert_eq!(back.wait_links(), trace.wait_links());
    });
}

/// Windowed views agree with the full view on everything that does not
/// cross a boundary: per-event locksets, initial values at window starts,
/// and MHB restricted to in-window pairs being a subset of the full
/// relation.
#[test]
fn windows_agree_with_full_view() {
    for_traces(0x714d0, 64, |rng, trace| {
        let wsize = rng.gen_range(2..7usize);
        let full = trace.full_view();
        for window in trace.windows(wsize) {
            for id in window.ids() {
                assert_eq!(window.lockset(id), full.lockset(id), "lockset of {}", id);
            }
            // In-window MHB is a sub-relation of full-trace MHB.
            let ids: Vec<EventId> = window.ids().collect();
            for &a in &ids {
                for &b in &ids {
                    if window.mhb(a, b) {
                        assert!(full.mhb(a, b), "window MHB must under-approximate");
                    }
                }
            }
        }
    });
}

/// Channel send/recv links are a first-class part of the trace substrate:
/// every linked recv points at a prior same-channel send, the links
/// survive a JSON round-trip, trace order re-validates as a schedule, and
/// a schedule that runs a recv ahead of its linked send is rejected.
#[test]
fn channel_links_order_sends_before_recvs() {
    let mut rng = SmallRng::seed_from_u64(0xC4A7);
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64usize);
    for _ in 0..cases {
        let n = rng.gen_range(1..5usize);
        let mut b = TraceBuilder::new();
        let chan = b.new_chan("c");
        let vars: Vec<_> = (0..n).map(|i| b.var(&format!("x{i}"))).collect();
        let producer = b.fork(ThreadId::MAIN);
        let consumer = b.fork(ThreadId::MAIN);
        let mut sends = Vec::new();
        for (i, &v) in vars.iter().enumerate() {
            b.write(producer, v, i as i64 + 1);
            sends.push(b.send(producer, chan));
        }
        let mut first_recv = None;
        for (i, &v) in vars.iter().enumerate() {
            let r = b.recv(consumer, chan, Some(sends[i]));
            first_recv.get_or_insert(r);
            b.read(consumer, v, i as i64 + 1);
        }
        let trace = b.finish();
        assert!(check_consistency(&trace).is_empty());

        // Every linked recv names a prior send on the same channel.
        assert_eq!(trace.msg_links().len(), n);
        for ml in trace.msg_links() {
            assert!(ml.send < ml.recv, "trace order runs sends first");
        }

        // Links survive JSON.
        let back: Trace = from_json(&to_json(&trace)).unwrap();
        assert_eq!(back.msg_links(), trace.msg_links());
        assert_eq!(back.events(), trace.events());

        // Trace order is a valid schedule; hoisting the consumer's first
        // recv ahead of every send is exactly a recv-before-send error.
        let view = trace.full_view();
        let identity = Schedule(view.ids().collect());
        assert_eq!(check_schedule(&view, &identity), Ok(()));
        let first_recv = first_recv.expect("n >= 1");
        let hoisted: Vec<EventId> = view
            .ids()
            .filter(|&id| {
                let ev = &trace.events()[id.index()];
                ev.thread != producer && id <= first_recv
            })
            .collect();
        assert_eq!(
            check_schedule(&view, &Schedule(hoisted)),
            Err(rvpredict::ScheduleError::RecvBeforeSend(first_recv))
        );
    }
}

/// RwLock read-mode spans overlap freely among themselves — trace order
/// with interleaved read sections is consistent and re-validates as a
/// schedule — while a write acquire scheduled into an open read span is
/// rejected. Read spans also survive a JSON round-trip.
#[test]
fn rwlock_read_spans_overlap_and_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x51AB);
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64usize);
    for _ in 0..cases {
        let readers = rng.gen_range(2..4usize);
        let mut b = TraceBuilder::new();
        let v = b.var("v");
        let l = b.new_lock("l");
        let ts: Vec<_> = (0..readers + 1).map(|_| b.fork(ThreadId::MAIN)).collect();
        let writer = ts[0];
        b.acquire(writer, l);
        b.write(writer, v, 7);
        b.release(writer, l);
        // All read sections open before any closes: maximal overlap.
        let mut racquires = Vec::new();
        for &t in &ts[1..] {
            racquires.push(b.acquire_read(t, l).expect("fresh read acquire"));
        }
        for &t in &ts[1..] {
            b.read(t, v, 7);
        }
        for &t in &ts[1..] {
            b.release_read(t, l);
        }
        let trace = b.finish();
        assert!(check_consistency(&trace).is_empty());

        let view = trace.full_view();
        assert_eq!(view.read_critical_sections(l).len(), readers);
        assert_eq!(view.critical_sections(l).len(), 1);
        let identity = Schedule(view.ids().collect());
        assert_eq!(check_schedule(&view, &identity), Ok(()));

        // Move the writer's section between a read acquire and its
        // release: the write acquire hits a read-held lock.
        let held: Vec<EventId> = view
            .ids()
            .filter(|&id| {
                let ev = &trace.events()[id.index()];
                ev.thread != writer && id <= racquires[0]
            })
            .chain(
                view.ids()
                    .filter(|&id| trace.events()[id.index()].thread == writer),
            )
            .collect();
        assert!(
            check_schedule(&view, &Schedule(held)).is_err(),
            "write acquire inside an open read span must not validate"
        );

        let back: Trace = from_json(&to_json(&trace)).unwrap();
        assert_eq!(back.events(), trace.events());
        let bview = back.full_view();
        assert_eq!(
            bview.read_critical_sections(l).len(),
            view.read_critical_sections(l).len()
        );
    }
}

/// Window-local initial values equal the last write before the window
/// (replay semantics).
#[test]
fn window_initial_values_replay() {
    for_traces(0x1717, 64, |rng, trace| {
        let wsize = rng.gen_range(2..7usize);
        let mut current: std::collections::HashMap<u32, i64> = Default::default();
        let mut pos = 0usize;
        for window in trace.windows(wsize) {
            for v in 0..trace.n_vars() as u32 {
                let expected = current
                    .get(&v)
                    .copied()
                    .unwrap_or_else(|| trace.initial_value(rvpredict::VarId(v)).0);
                assert_eq!(window.initial_value(rvpredict::VarId(v)).0, expected);
            }
            for i in window.range() {
                if let rvpredict::EventKind::Write { var, value } = trace.events()[i].kind {
                    current.insert(var.0, value.0);
                }
                pos += 1;
            }
        }
        assert_eq!(pos, trace.len());
    });
}
