//! Property-based tests of the trace substrate: windowing agrees with the
//! full view, serde round-trips, and the interpreter only ever produces
//! consistent traces.

use proptest::prelude::*;
use rvpredict::{check_consistency, EventId, Trace, ViewExt};
use rvsim::stmts::*;
use rvsim::{execute, ExecConfig, Expr, GlobalId, Local, LockRef, ProcId, Program, Stmt};

#[derive(Debug, Clone)]
enum A {
    W(u32, i64),
    R(u32),
    L(u32),
    If(u32),
}

fn arb_trace() -> impl Strategy<Value = (Vec<Vec<A>>, u64)> {
    let op = prop_oneof![
        ((0u32..3), (0i64..3)).prop_map(|(v, x)| A::W(v, x)),
        (0u32..3).prop_map(A::R),
        (0u32..2).prop_map(A::L),
        (0u32..3).prop_map(A::If),
    ];
    (
        proptest::collection::vec(proptest::collection::vec(op, 1..6), 1..4),
        0u64..500,
    )
}

fn run(workers: &[Vec<A>], seed: u64) -> Option<Trace> {
    let r = Local(0);
    let body = |ops: &[A]| -> Vec<Stmt> {
        let mut out = Vec::new();
        for op in ops {
            match *op {
                A::W(v, x) => out.push(store(GlobalId(v), x.into())),
                A::R(v) => out.push(load(r, GlobalId(v))),
                A::L(l) => out.extend([
                    lock(LockRef(l)),
                    store(GlobalId(0), 1.into()),
                    unlock(LockRef(l)),
                ]),
                A::If(v) => out.extend([
                    load(r, GlobalId(v)),
                    if_(Expr::eq(r.into(), 0.into()), vec![store(GlobalId(v), 2.into())], vec![]),
                ]),
            }
        }
        out
    };
    let procs: Vec<Vec<Stmt>> = workers.iter().map(|w| body(w)).collect();
    let mut main: Vec<Stmt> = (0..procs.len() as u32).map(ProcId).map(fork).collect();
    main.extend((0..procs.len() as u32).map(ProcId).map(join));
    let program = Program::new(
        vec![scalar("v0", 0), scalar("v1", 0), scalar("v2", 0)],
        2,
        main,
        procs,
    );
    let exec = execute(&program, &ExecConfig::seeded(seed)).ok()?;
    Some(exec.trace)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Interpreter output is always sequentially consistent, whatever the
    /// schedule.
    #[test]
    fn interpreter_traces_consistent((workers, seed) in arb_trace()) {
        let Some(trace) = run(&workers, seed) else { return Ok(()) };
        prop_assert!(check_consistency(&trace).is_empty());
    }

    /// Serde round-trips preserve events, stats and metadata.
    #[test]
    fn serde_roundtrip((workers, seed) in arb_trace()) {
        let Some(trace) = run(&workers, seed) else { return Ok(()) };
        let json = serde_json::to_string(&trace).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back.events(), trace.events());
        prop_assert_eq!(back.stats(), trace.stats());
        prop_assert_eq!(back.wait_links(), trace.wait_links());
    }

    /// Windowed views agree with the full view on everything that does not
    /// cross a boundary: per-event locksets, initial values at window
    /// starts, and MHB restricted to in-window pairs being a subset of the
    /// full relation.
    #[test]
    fn windows_agree_with_full_view((workers, seed) in arb_trace(), wsize in 2usize..7) {
        let Some(trace) = run(&workers, seed) else { return Ok(()) };
        let full = trace.full_view();
        for window in trace.windows(wsize) {
            for id in window.ids() {
                prop_assert_eq!(window.lockset(id), full.lockset(id), "lockset of {}", id);
            }
            // In-window MHB is a sub-relation of full-trace MHB.
            let ids: Vec<EventId> = window.ids().collect();
            for &a in &ids {
                for &b in &ids {
                    if window.mhb(a, b) {
                        prop_assert!(full.mhb(a, b), "window MHB must under-approximate");
                    }
                }
            }
        }
    }

    /// Window-local initial values equal the last write before the window
    /// (replay semantics).
    #[test]
    fn window_initial_values_replay((workers, seed) in arb_trace(), wsize in 2usize..7) {
        let Some(trace) = run(&workers, seed) else { return Ok(()) };
        let mut current: std::collections::HashMap<u32, i64> = Default::default();
        let mut pos = 0usize;
        for window in trace.windows(wsize) {
            for v in 0..trace.n_vars() as u32 {
                let expected = current
                    .get(&v)
                    .copied()
                    .unwrap_or_else(|| trace.initial_value(rvpredict::VarId(v)).0);
                prop_assert_eq!(window.initial_value(rvpredict::VarId(v)).0, expected);
            }
            for i in window.range() {
                if let rvpredict::EventKind::Write { var, value } = trace.events()[i].kind {
                    current.insert(var.0, value.0);
                }
                pos += 1;
            }
        }
        prop_assert_eq!(pos, trace.len());
    }
}
