//! End-to-end test of the `rvpredict` CLI binary: serialize a trace to
//! JSON, run the tool on it, and check the report — the adoption surface a
//! downstream instrumentation front-end would use.

use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_rvpredict")
}

#[test]
fn cli_detects_race_in_serialized_trace() {
    let w = rvsim::workloads::figures::figure1();
    let json = rvpredict::to_json(&w.trace);
    let dir = std::env::temp_dir().join("rvpredict-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("figure1.json");
    std::fs::write(&path, json).unwrap();

    let out = Command::new(bin())
        .arg("--witnesses")
        .arg(&path)
        .output()
        .expect("binary runs");
    // Races found ⇒ exit code 1.
    assert_eq!(
        out.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 race(s)"), "{stdout}");
    assert!(stdout.contains("witness:"), "{stdout}");
}

#[test]
fn cli_baselines_find_nothing_on_figure1() {
    let w = rvsim::workloads::figures::figure1();
    let json = rvpredict::to_json(&w.trace);
    let dir = std::env::temp_dir().join("rvpredict-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("figure1b.json");
    std::fs::write(&path, json).unwrap();

    for det in ["hb", "cp", "said"] {
        let out = Command::new(bin())
            .args(["--detector", det])
            .arg(&path)
            .output()
            .expect("binary runs");
        // No races, nothing degraded ⇒ exit code 0.
        assert!(out.status.success(), "{det}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("0 race(s)"), "{det}: {stdout}");
    }
}

#[test]
fn cli_jobs_flag_is_accepted_and_output_matches_serial() {
    let w = rvsim::workloads::figures::figure1();
    let json = rvpredict::to_json(&w.trace);
    let dir = std::env::temp_dir().join("rvpredict-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("figure1c.json");
    std::fs::write(&path, json).unwrap();

    let run = |jobs: &str| {
        let out = Command::new(bin())
            .args(["--jobs", jobs])
            .arg(&path)
            .output()
            .expect("binary runs");
        assert_eq!(
            out.status.code(),
            Some(1),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let serial = run("1");
    let parallel = run("4");
    assert!(serial.contains("1 race(s)"), "{serial}");
    // Races and counters are deterministic across thread counts; only the
    // timing lines may differ.
    let races = |s: &str| -> Vec<String> {
        s.lines()
            .filter(|l| l.contains("race "))
            .map(|l| l.to_string())
            .collect()
    };
    assert_eq!(races(&serial), races(&parallel));

    let out = Command::new(bin())
        .args(["--jobs", "0"])
        .arg(&path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "--jobs 0 is a usage error");
}

#[test]
fn cli_demo_mode() {
    let out = Command::new(bin())
        .arg("--demo")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "figure 1 has a race");
    assert!(String::from_utf8_lossy(&out.stdout).contains("1 race(s)"));
}

#[test]
fn cli_rejects_garbage() {
    let dir = std::env::temp_dir().join("rvpredict-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("garbage.json");
    std::fs::write(&path, "not json").unwrap();
    let out = Command::new(bin())
        .arg(&path)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "parse errors are exit 2");
}

#[test]
fn cli_usage_on_missing_args() {
    let out = Command::new(bin()).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
