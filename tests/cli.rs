//! End-to-end test of the `rvpredict` CLI binary: serialize a trace to
//! JSON, run the tool on it, and check the report — the adoption surface a
//! downstream instrumentation front-end would use.

use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_rvpredict")
}

#[test]
fn cli_detects_race_in_serialized_trace() {
    let w = rvsim::workloads::figures::figure1();
    let json = rvpredict::to_json(&w.trace);
    let dir = std::env::temp_dir().join("rvpredict-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("figure1.json");
    std::fs::write(&path, json).unwrap();

    let out = Command::new(bin())
        .arg("--witnesses")
        .arg(&path)
        .output()
        .expect("binary runs");
    // Races found ⇒ exit code 1.
    assert_eq!(
        out.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 race(s)"), "{stdout}");
    assert!(stdout.contains("witness:"), "{stdout}");
}

#[test]
fn cli_baselines_find_nothing_on_figure1() {
    let w = rvsim::workloads::figures::figure1();
    let json = rvpredict::to_json(&w.trace);
    let dir = std::env::temp_dir().join("rvpredict-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("figure1b.json");
    std::fs::write(&path, json).unwrap();

    for det in ["hb", "cp", "said"] {
        let out = Command::new(bin())
            .args(["--detector", det])
            .arg(&path)
            .output()
            .expect("binary runs");
        // No races, nothing degraded ⇒ exit code 0.
        assert!(out.status.success(), "{det}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("0 race(s)"), "{det}: {stdout}");
    }
}

#[test]
fn cli_jobs_flag_is_accepted_and_output_matches_serial() {
    let w = rvsim::workloads::figures::figure1();
    let json = rvpredict::to_json(&w.trace);
    let dir = std::env::temp_dir().join("rvpredict-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("figure1c.json");
    std::fs::write(&path, json).unwrap();

    let run = |jobs: &str| {
        let out = Command::new(bin())
            .args(["--jobs", jobs])
            .arg(&path)
            .output()
            .expect("binary runs");
        assert_eq!(
            out.status.code(),
            Some(1),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let serial = run("1");
    let parallel = run("4");
    assert!(serial.contains("1 race(s)"), "{serial}");
    // Races and counters are deterministic across thread counts; only the
    // timing lines may differ.
    let races = |s: &str| -> Vec<String> {
        s.lines()
            .filter(|l| l.contains("race "))
            .map(|l| l.to_string())
            .collect()
    };
    assert_eq!(races(&serial), races(&parallel));

    let out = Command::new(bin())
        .args(["--jobs", "0"])
        .arg(&path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "--jobs 0 is a usage error");
}

#[test]
fn cli_demo_mode() {
    let out = Command::new(bin())
        .arg("--demo")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "figure 1 has a race");
    assert!(String::from_utf8_lossy(&out.stdout).contains("1 race(s)"));
}

#[test]
fn cli_rejects_garbage() {
    let dir = std::env::temp_dir().join("rvpredict-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("garbage.json");
    std::fs::write(&path, "not json").unwrap();
    let out = Command::new(bin())
        .arg(&path)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "parse errors are exit 2");
}

#[test]
fn cli_usage_on_missing_args() {
    let out = Command::new(bin()).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

/// `--kind` admits exactly `race|deadlock|atomicity|all`; anything else is
/// a usage error (exit 2) that names the flag, and a missing value is too.
#[test]
fn cli_rejects_unknown_kind() {
    let out = Command::new(bin())
        .args(["--kind", "livelock", "--demo"])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(2),
        "unknown --kind is a usage error"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--kind"), "diagnostic names the flag: {err}");

    let out = Command::new(bin())
        .arg("--kind")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "--kind without a value");
}

/// Runs `--metrics` and returns (full document, timing-free prefix): the
/// emitted JSON up to but excluding the `timings_us` section, i.e. exactly
/// the counters and histograms — the sections the determinism contract
/// covers.
fn metrics_run(path: &std::path::Path, extra: &[&str], out_name: &str) -> (String, String) {
    let dir = std::env::temp_dir().join("rvpredict-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let metrics_path = dir.join(out_name);
    let out = Command::new(bin())
        .args(extra)
        .args(["--metrics", metrics_path.to_str().unwrap()])
        .arg(path)
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = std::fs::read_to_string(&metrics_path).expect("metrics file written");
    let cut = doc
        .find("  \"timings_us\": {")
        .unwrap_or_else(|| panic!("no timings_us section in {doc}"));
    (doc.clone(), doc[..cut].to_string())
}

/// `--metrics` emits a parseable versioned document whose count-type
/// sections are byte-identical at 1, 2, 4 and 8 workers.
#[test]
fn cli_metrics_json_is_identical_across_jobs() {
    let w = rvsim::workloads::figures::figure1();
    let json = rvpredict::to_json(&w.trace);
    let dir = std::env::temp_dir().join("rvpredict-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("figure1-metrics.json");
    std::fs::write(&path, json).unwrap();

    let mut baseline: Option<String> = None;
    for jobs in ["1", "2", "4", "8"] {
        let (doc, counters) = metrics_run(
            &path,
            &["--jobs", jobs],
            &format!("metrics-jobs{jobs}.json"),
        );
        // The full document is valid JSON for the in-tree parser and
        // carries the schema tag plus real content.
        let parsed = rvpredict::parse_json(&doc).expect("metrics JSON parses");
        assert_eq!(
            parsed
                .field("schema_version")
                .and_then(|v| v.as_int())
                .unwrap(),
            rvpredict::METRICS_SCHEMA_VERSION as i64,
        );
        assert!(doc.contains("\"detector.races\": 1"), "{doc}");
        assert!(doc.contains("\"solver.conflicts_per_cop\":"), "{doc}");
        assert!(doc.contains("\"detector.wall_time\":"), "{doc}");
        assert!(doc.contains("\"trace.events\":"), "{doc}");
        match &baseline {
            None => baseline = Some(counters),
            Some(b) => assert_eq!(
                b, &counters,
                "count-type metrics differ between --jobs 1 and --jobs {jobs}"
            ),
        }
    }
}

/// The `--metrics` determinism contract holds in degraded runs too: with
/// an injected fault the counters sections still agree across thread
/// counts, and the failure is visible in the document.
#[test]
fn cli_metrics_json_is_identical_across_jobs_under_fault() {
    let w = rvsim::workloads::figures::figure1();
    let json = rvpredict::to_json(&w.trace);
    let dir = std::env::temp_dir().join("rvpredict-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("figure1-metrics-fault.json");
    std::fs::write(&path, json).unwrap();

    let mut baseline: Option<String> = None;
    for jobs in ["1", "2", "4", "8"] {
        let metrics_path = dir.join(format!("metrics-fault-jobs{jobs}.json"));
        let out = Command::new(bin())
            .args(["--jobs", jobs, "--inject-fault", "0:0:timeout"])
            .args(["--metrics", metrics_path.to_str().unwrap()])
            .arg(&path)
            .output()
            .expect("binary runs");
        // The only COP times out ⇒ no races but a degraded report (exit 3).
        assert_eq!(
            out.status.code(),
            Some(3),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let doc = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(doc.contains("\"detector.undecided\": 1"), "{doc}");
        assert!(doc.contains("\"detector.undecided.timeout\": 1"), "{doc}");
        let cut = doc.find("  \"timings_us\": {").unwrap();
        let counters = doc[..cut].to_string();
        match &baseline {
            None => baseline = Some(counters),
            Some(b) => assert_eq!(
                b, &counters,
                "faulted metrics differ between --jobs 1 and --jobs {jobs}"
            ),
        }
    }
}

/// `--trace-log` narrates phases on stderr without disturbing the report
/// on stdout or the exit code.
#[test]
fn cli_trace_log_writes_phases_to_stderr() {
    let out = Command::new(bin())
        .args(["--demo", "--trace-log"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("[rvpredict +"), "{stderr}");
    assert!(stderr.contains("detection"), "{stderr}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("1 race(s)"));
}

/// `--metrics` pointing at an unwritable path is an IO/usage error (exit
/// 2), not a silent success.
#[test]
fn cli_metrics_unwritable_path_is_an_error() {
    let out = Command::new(bin())
        .args(["--demo", "--metrics", "/nonexistent-dir/out.json"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("metrics"));
}

/// `--timeout-ms`: a zero per-window wall-clock budget deterministically
/// degrades every COP to undecided (timeout) — exit 3 with the
/// degradation note — through both the per-COP and batched solve paths
/// (`--no-slice` shares one encoding per window), and through `--stream`.
/// A generous budget changes nothing.
#[test]
fn cli_timeout_ms_degrades_uniformly() {
    let w = rvsim::workloads::figures::figure1();
    let json = rvpredict::to_json(&w.trace);
    let dir = std::env::temp_dir().join("rvpredict-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("figure1-timeout.json");
    std::fs::write(&path, json).unwrap();

    for extra in [&[][..], &["--no-slice"][..], &["--stream"][..]] {
        let out = Command::new(bin())
            .args(["--timeout-ms", "0"])
            .args(extra)
            .arg(&path)
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(3), "budget 0 degrades: {extra:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("0 race(s)"), "{extra:?}: {stdout}");
        assert!(stdout.contains("undecided=1"), "{extra:?}: {stdout}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("race freedom is not established"),
            "{extra:?}"
        );
    }
    // A budget that cannot fire leaves the verdict untouched.
    let out = Command::new(bin())
        .args(["--timeout-ms", "600000"])
        .arg(&path)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "generous budget still races");
    // Overflowing deadlines mean unbounded, not instantly expired.
    let out = Command::new(bin())
        .args(["--timeout-ms", "18446744073709551615"])
        .arg(&path)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "saturating budget is unbounded");
}
