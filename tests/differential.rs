//! Differential testing of the SMT-based detector against the brute-force
//! maximal-causal-model oracle (an independent implementation of the §2
//! axioms). Theorem 3 says the constraint system is satisfiable *iff* the
//! COP is a race in the maximal sense — so on small traces the two
//! implementations must agree exactly, in both directions (soundness AND
//! maximality).

use rvcore::{encode, oracle_races, EncoderOptions};
use rvpredict::{
    check_consistency, check_schedule, Budget, Cop, CpDetector, DetectorConfig, HbDetector,
    RaceDetector, RaceDetectorTool, RaceSignature, SaidDetector, SmtResult, Solver, ViewExt,
};
use rvsim::rng::SmallRng;
use rvsim::stmts::*;
use rvsim::{execute, ExecConfig, Expr, GlobalId, Local, LockRef, Outcome, ProcId, Program, Stmt};
use std::collections::BTreeSet;

#[derive(Debug, Clone)]
enum Op {
    Write(u32, i64),
    Read(u32),
    Guarded(u32, u32),
    Locked(u32, u32),
    Branchy,
}

fn gen_ops(rng: &mut SmallRng) -> Vec<Vec<Op>> {
    (0..2)
        .map(|_| {
            (0..rng.gen_range(1..3usize))
                .map(|_| match rng.gen_range(0..5u32) {
                    0 => Op::Write(rng.gen_range(0..2u32), rng.gen_range(0..2i64)),
                    1 => Op::Read(rng.gen_range(0..2u32)),
                    2 => Op::Guarded(rng.gen_range(0..2u32), rng.gen_range(0..2u32)),
                    3 => Op::Locked(rng.gen_range(0..2u32), rng.gen_range(0..2u32)),
                    _ => Op::Branchy,
                })
                .collect()
        })
        .collect()
}

fn build(workers: &[Vec<Op>]) -> Program {
    let r = Local(0);
    let body = |ops: &[Op]| -> Vec<Stmt> {
        let mut out = Vec::new();
        for op in ops {
            match *op {
                Op::Write(v, val) => out.push(store(GlobalId(v), val.into())),
                Op::Read(v) => out.push(load(r, GlobalId(v))),
                Op::Guarded(v, w) => out.extend([
                    load(r, GlobalId(v)),
                    if_(
                        Expr::eq(r.into(), 0.into()),
                        vec![store(GlobalId(w), 1.into())],
                        vec![],
                    ),
                ]),
                Op::Locked(v, l) => out.extend([
                    lock(LockRef(l)),
                    store(GlobalId(v), 1.into()),
                    unlock(LockRef(l)),
                ]),
                Op::Branchy => out.push(if_(Expr::Const(1), vec![], vec![])),
            }
        }
        out
    };
    let procs: Vec<Vec<Stmt>> = workers.iter().map(|w| body(w)).collect();
    let mut main: Vec<Stmt> = (0..procs.len() as u32).map(ProcId).map(fork).collect();
    main.extend((0..procs.len() as u32).map(ProcId).map(join));
    Program::new(vec![scalar("v0", 0), scalar("v1", 0)], 2, main, procs)
}

/// All conflicting pairs of a view (no caps, no quick check) decided by the
/// encoder directly.
fn detector_races(trace: &rvpredict::Trace) -> BTreeSet<Cop> {
    let view = trace.full_view();
    let en = rvcore::enumerate_cops(&view, false, usize::MAX);
    let mut out = BTreeSet::new();
    for cop in en.cops {
        let enc = encode(&view, cop, EncoderOptions::default());
        let mut s = Solver::new(&enc.fb);
        s.hint_atom_phases(|a| enc.phase_hint(a));
        if s.solve(&Budget::UNLIMITED) == SmtResult::Sat {
            out.insert(cop);
        }
    }
    out
}

/// On every reachable small trace, the encoder's verdicts equal the
/// oracle's, COP for COP.
#[test]
fn encoder_matches_oracle() {
    let mut rng = SmallRng::seed_from_u64(0xD1FF);
    // `PROPTEST_CASES` kept its name when the suite moved off proptest.
    let cases: usize = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let mut checked = 0;
    for _attempt in 0..cases * 20 {
        if checked == cases {
            break;
        }
        let workers = gen_ops(&mut rng);
        let program = build(&workers);
        let seed = rng.gen_range(0..400u64);
        let exec = execute(&program, &ExecConfig::seeded(seed)).unwrap();
        if exec.outcome != Outcome::Completed || exec.trace.len() > 22 {
            continue;
        }
        checked += 1;
        assert!(check_consistency(&exec.trace).is_empty());
        let got = detector_races(&exec.trace);
        let want = oracle_races(&exec.trace.full_view(), 22);
        assert_eq!(
            got,
            want,
            "encoder vs oracle disagree on trace {:?}",
            exec.trace.events()
        );
    }
    assert_eq!(checked, cases, "not enough small completed executions");
}

/// Like [`gen_ops`] but larger: 2–3 workers, up to 5 ops each. The
/// containment harness has no oracle in the loop, so it can afford traces
/// the brute-force enumeration cannot.
fn gen_ops_sized(rng: &mut SmallRng) -> Vec<Vec<Op>> {
    (0..rng.gen_range(2..4usize))
        .map(|_| {
            (0..rng.gen_range(1..6usize))
                .map(|_| match rng.gen_range(0..5u32) {
                    0 => Op::Write(rng.gen_range(0..2u32), rng.gen_range(0..2i64)),
                    1 => Op::Read(rng.gen_range(0..2u32)),
                    2 => Op::Guarded(rng.gen_range(0..2u32), rng.gen_range(0..2u32)),
                    3 => Op::Locked(rng.gen_range(0..2u32), rng.gen_range(0..2u32)),
                    _ => Op::Branchy,
                })
                .collect()
        })
        .collect()
}

/// Table 1's maximality claim, randomized, with the brute-force oracle as
/// the arbiter of ground truth. On every generated trace:
///
/// * every *truly* predictable race — a COP the oracle proves — is
///   reported by RV (maximality, Thm. 3);
/// * every race HB, CP or Said reports is either reported by RV too, or
///   is an over-approximation the oracle also rejects (the baselines'
///   guarantees cover only the first race; RV must never miss a real one
///   they find);
/// * every RV race ships a witness schedule that re-validates against the
///   §2 axioms, ending in the adjacent COP (soundness, Thm. 1).
#[test]
fn baseline_races_contained_in_rv_and_witnesses_validate() {
    let mut rng = SmallRng::seed_from_u64(0x7AB1E);
    // `PROPTEST_CASES` kept its name when the suite moved off proptest.
    let cases: usize = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let mut checked = 0;
    for _attempt in 0..cases * 40 {
        if checked == cases {
            break;
        }
        let workers = gen_ops_sized(&mut rng);
        let program = build(&workers);
        let seed = rng.gen_range(0..400u64);
        let exec = execute(&program, &ExecConfig::seeded(seed)).unwrap();
        if exec.outcome != Outcome::Completed || exec.trace.len() > 22 {
            continue;
        }
        checked += 1;
        let trace = &exec.trace;
        assert!(check_consistency(trace).is_empty());
        let view = trace.full_view();

        let rv_report = RaceDetector::with_config(DetectorConfig::default()).detect(trace);
        assert_eq!(
            rv_report.stats.undecided, 0,
            "small traces must decide fully"
        );
        // Soundness: every RV race's witness is a valid reordering ending
        // in the adjacent COP.
        assert_eq!(rv_report.stats.witness_failures, 0);
        for race in &rv_report.races {
            assert_eq!(
                check_schedule(&view, &race.schedule),
                Ok(()),
                "witness must re-validate on trace {:?}",
                trace.events()
            );
            let n = race.schedule.0.len();
            assert_eq!(race.schedule.0[n - 2], race.cop.first);
            assert_eq!(race.schedule.0[n - 1], race.cop.second);
        }
        let rv: BTreeSet<RaceSignature> = rv_report.signatures().into_iter().collect();
        let real: BTreeSet<RaceSignature> = oracle_races(&view, 22)
            .into_iter()
            .map(|cop| RaceSignature::of_cop(trace, cop))
            .collect();

        // Maximality: no truly predictable race escapes RV.
        for sig in &real {
            assert!(
                rv.contains(sig),
                "oracle race {} not reported by RV on trace {:?}",
                sig.display(trace),
                trace.events()
            );
        }

        // Baselines: anything they find that RV does not must be an
        // over-approximation the oracle rejects too.
        let hb = HbDetector::default().detect_races(trace);
        let cp = CpDetector::default().detect_races(trace);
        let mut said_det = SaidDetector::default();
        said_det.config.solver_timeout = std::time::Duration::from_secs(5);
        let said = said_det.detect_races(trace);
        for (name, found) in [
            ("hb", &hb.signatures),
            ("cp", &cp.signatures),
            ("said", &said.signatures),
        ] {
            for sig in found {
                assert!(
                    rv.contains(sig) || !real.contains(sig),
                    "{name} race {} is real (oracle-confirmed) but not reported by RV \
                     on trace {:?}",
                    sig.display(trace),
                    trace.events()
                );
            }
        }
    }
    assert_eq!(checked, cases, "not enough small completed executions");
}

/// Everything the report decided, minus solver-effort numbers (slicing
/// legitimately changes formula sizes and hence conflicts/decisions).
fn verdict_fingerprint(report: &rvpredict::DetectionReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for race in &report.races {
        let _ = writeln!(
            out,
            "race sig={:?} cop=({},{}) window={}..{} schedule={}",
            race.signature,
            race.cop.first,
            race.cop.second,
            race.window.start,
            race.window.end,
            race.schedule
        );
    }
    let s = &report.stats;
    let _ = writeln!(
        out,
        "sat={} unsat={} undecided={} witness_failures={} sigs={:?}",
        s.sat,
        s.unsat,
        s.undecided,
        s.witness_failures,
        report.signatures()
    );
    out
}

/// The `--no-slice` A/B check, randomized: relevance slicing must not
/// change verdicts, witnesses, or dedup signatures — in batch and per-COP
/// mode, at every worker count. The sliced runs must also demonstrably
/// slice (cone events < window events overall).
#[test]
fn slicing_is_verdict_and_witness_identical() {
    let mut rng = SmallRng::seed_from_u64(0x51 << 8 | 0xCE);
    // `PROPTEST_CASES` kept its name when the suite moved off proptest.
    let cases: usize = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24);
    let mut checked = 0;
    let mut sliced_somewhere = false;
    for _attempt in 0..cases * 40 {
        if checked == cases {
            break;
        }
        let workers = gen_ops_sized(&mut rng);
        let program = build(&workers);
        let seed = rng.gen_range(0..400u64);
        let exec = execute(&program, &ExecConfig::seeded(seed)).unwrap();
        if exec.outcome != Outcome::Completed || exec.trace.len() < 6 || exec.trace.len() > 40 {
            continue;
        }
        checked += 1;
        let trace = &exec.trace;
        // A small window size so multi-window dedup is exercised too.
        for batch in [true, false] {
            let mut baseline: Option<String> = None;
            for slice in [true, false] {
                for jobs in [1usize, 2, 4, 8] {
                    let cfg = DetectorConfig {
                        window_size: 16,
                        batch_windows: batch,
                        slice,
                        parallelism: jobs,
                        ..Default::default()
                    };
                    let report = RaceDetector::with_config(cfg).detect(trace);
                    if slice && report.stats.sliced_out > 0 {
                        sliced_somewhere = true;
                    }
                    assert!(
                        report.stats.cone_events <= report.stats.window_events_encoded,
                        "cone larger than window on trace {:?}",
                        trace.events()
                    );
                    let fp = verdict_fingerprint(&report);
                    match &baseline {
                        None => baseline = Some(fp),
                        Some(b) => assert_eq!(
                            &fp,
                            b,
                            "slice={slice} jobs={jobs} batch={batch} diverged on trace {:?}",
                            trace.events()
                        ),
                    }
                }
            }
        }
    }
    assert_eq!(checked, cases, "not enough small completed executions");
    assert!(
        sliced_somewhere,
        "the workload never exercised an actual slice"
    );
}

/// The `--no-tiers` A/B check, randomized: the pre-solver cascade must
/// not change verdicts, witnesses, or dedup signatures — in batch and
/// per-COP mode, at every worker count. The screens must also demonstrably
/// decide something across the workload.
#[test]
fn tiers_are_verdict_and_witness_identical() {
    let mut rng = SmallRng::seed_from_u64(0x71E5);
    // `PROPTEST_CASES` kept its name when the suite moved off proptest.
    let cases: usize = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24);
    let mut checked = 0;
    let mut screened_somewhere = false;
    for _attempt in 0..cases * 40 {
        if checked == cases {
            break;
        }
        let workers = gen_ops_sized(&mut rng);
        let program = build(&workers);
        let seed = rng.gen_range(0..400u64);
        let exec = execute(&program, &ExecConfig::seeded(seed)).unwrap();
        if exec.outcome != Outcome::Completed || exec.trace.len() < 6 || exec.trace.len() > 40 {
            continue;
        }
        checked += 1;
        let trace = &exec.trace;
        // A small window size so multi-window dedup is exercised too.
        for batch in [true, false] {
            let mut baseline: Option<String> = None;
            for tiers in [true, false] {
                for jobs in [1usize, 2, 4, 8] {
                    let cfg = DetectorConfig {
                        window_size: 16,
                        batch_windows: batch,
                        tiers,
                        parallelism: jobs,
                        ..Default::default()
                    };
                    let report = RaceDetector::with_config(cfg).detect(trace);
                    if tiers {
                        assert_eq!(
                            report.stats.tier_confirmed
                                + report.stats.tier_refuted
                                + report.stats.tier_residue,
                            report.stats.cops_solved,
                            "tier counters must partition cops_solved on trace {:?}",
                            trace.events()
                        );
                        if report.stats.tier_confirmed + report.stats.tier_refuted > 0 {
                            screened_somewhere = true;
                        }
                    } else {
                        assert_eq!(
                            report.stats.tier_confirmed
                                + report.stats.tier_refuted
                                + report.stats.tier_residue,
                            0,
                            "tiers off must not attribute stages on trace {:?}",
                            trace.events()
                        );
                    }
                    let fp = verdict_fingerprint(&report);
                    match &baseline {
                        None => baseline = Some(fp),
                        Some(b) => assert_eq!(
                            &fp,
                            b,
                            "tiers={tiers} jobs={jobs} batch={batch} diverged on trace {:?}",
                            trace.events()
                        ),
                    }
                }
            }
        }
    }
    assert_eq!(checked, cases, "not enough small completed executions");
    assert!(
        screened_somewhere,
        "the workload never exercised an actual tier decision"
    );
}

/// Oracle arbitration of the screens themselves, COP by COP: everything
/// Tier A confirms must be a race the brute-force oracle proves, and
/// nothing Tier B refutes may be one (tier-confirmed ⊆ oracle-confirmed,
/// tier-refuted ∩ oracle-confirmed = ∅). Also checked against the
/// encoder's own verdict in both consistency modes, which is the exact
/// byte-identity contract the detector relies on.
#[test]
fn tier_decisions_agree_with_oracle_and_encoder() {
    use rvpredict::{ConsistencyMode, TierAnalysis, TierDecision};

    let mut rng = SmallRng::seed_from_u64(0x0DD5);
    // `PROPTEST_CASES` kept its name when the suite moved off proptest.
    let cases: usize = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let mut checked = 0;
    let (mut confirms, mut refutes) = (0usize, 0usize);
    for _attempt in 0..cases * 20 {
        if checked == cases {
            break;
        }
        let workers = gen_ops(&mut rng);
        let program = build(&workers);
        let seed = rng.gen_range(0..400u64);
        let exec = execute(&program, &ExecConfig::seeded(seed)).unwrap();
        if exec.outcome != Outcome::Completed || exec.trace.len() > 22 {
            continue;
        }
        checked += 1;
        let trace = &exec.trace;
        let view = trace.full_view();
        let real = oracle_races(&view, 22);
        let en = rvcore::enumerate_cops(&view, false, usize::MAX);
        for mode in [ConsistencyMode::ControlFlow, ConsistencyMode::WholeTrace] {
            let mut tiers = TierAnalysis::new(&view, mode, true);
            for &cop in &en.cops {
                let decision = tiers.decide(&cop);
                let opts = EncoderOptions {
                    mode,
                    ..Default::default()
                };
                let enc = encode(&view, cop, opts);
                let mut s = Solver::new(&enc.fb);
                s.hint_atom_phases(|a| enc.phase_hint(a));
                let verdict = s.solve(&Budget::UNLIMITED);
                match decision {
                    TierDecision::Confirmed => {
                        confirms += 1;
                        assert_eq!(
                            verdict,
                            SmtResult::Sat,
                            "tier A confirmed a non-race ({mode:?}) cop {cop:?} on \
                             trace {:?}",
                            trace.events()
                        );
                        if mode == ConsistencyMode::ControlFlow {
                            assert!(
                                real.contains(&cop),
                                "tier A confirmed cop {cop:?} the oracle rejects on \
                                 trace {:?}",
                                trace.events()
                            );
                        }
                    }
                    TierDecision::Refuted => {
                        refutes += 1;
                        assert_eq!(
                            verdict,
                            SmtResult::Unsat,
                            "tier B refuted a satisfiable cop ({mode:?}) {cop:?} on \
                             trace {:?}",
                            trace.events()
                        );
                        if mode == ConsistencyMode::ControlFlow {
                            assert!(
                                !real.contains(&cop),
                                "tier B refuted cop {cop:?} the oracle proves on \
                                 trace {:?}",
                                trace.events()
                            );
                        }
                    }
                    TierDecision::Residue => {}
                }
            }
        }
    }
    assert_eq!(checked, cases, "not enough small completed executions");
    assert!(confirms > 0, "the workload never exercised a confirmation");
    assert!(refutes > 0, "the workload never exercised a refutation");
}

/// A deterministic regression of the differential harness on Figure 1.
#[test]
fn figure1_differential() {
    let w = rvsim::workloads::figures::figure1();
    let got = detector_races(&w.trace);
    let want = oracle_races(&w.trace.full_view(), 22);
    assert_eq!(got, want);
    assert_eq!(got.len(), 1);
}

/// The `--no-incremental` A/B check, randomized: one resident solver
/// session per window (per-COP assumption queries, learnt clauses
/// retained across COPs) must decide exactly what encode-from-scratch
/// decides — same verdicts, witnesses, and dedup signatures — in batch
/// and per-COP mode, sliced and unsliced, at every worker count.
#[test]
fn incremental_solver_is_verdict_and_witness_identical() {
    let mut rng = SmallRng::seed_from_u64(0x1CC);
    // `PROPTEST_CASES` kept its name when the suite moved off proptest.
    let cases: usize = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let mut checked = 0;
    for _attempt in 0..cases * 40 {
        if checked == cases {
            break;
        }
        let workers = gen_ops_sized(&mut rng);
        let program = build(&workers);
        let seed = rng.gen_range(0..400u64);
        let exec = execute(&program, &ExecConfig::seeded(seed)).unwrap();
        if exec.outcome != Outcome::Completed || exec.trace.len() < 6 || exec.trace.len() > 40 {
            continue;
        }
        checked += 1;
        let trace = &exec.trace;
        // A small window size so multi-window dedup is exercised too.
        let mut baseline: Option<String> = None;
        for incremental in [true, false] {
            for batch in [true, false] {
                for slice in [true, false] {
                    for jobs in [1usize, 2, 4, 8] {
                        let cfg = DetectorConfig {
                            window_size: 16,
                            incremental,
                            batch_windows: batch,
                            slice,
                            parallelism: jobs,
                            ..Default::default()
                        };
                        let report = RaceDetector::with_config(cfg).detect(trace);
                        let fp = verdict_fingerprint(&report);
                        match &baseline {
                            None => baseline = Some(fp),
                            Some(b) => assert_eq!(
                                &fp,
                                b,
                                "incremental={incremental} batch={batch} slice={slice} \
                                 jobs={jobs} diverged on trace {:?}",
                                trace.events()
                            ),
                        }
                    }
                }
            }
        }
    }
    assert_eq!(checked, cases, "not enough small completed executions");
}

/// The learnt-clause poison test: a window whose session first *retires*
/// two refuted COPs (their selector stays un-assumed forever after) and
/// only then checks a satisfiable one. If any clause learnt under a
/// retired COP's pinned race cut were retained unsoundly, the later COP
/// would flip to `Unsat` under the incremental session — so the verdicts
/// must equal the encode-from-scratch run's, both with the cascade on
/// (the COPs below defeat both screens) and off (pure solver order).
#[test]
fn retained_clauses_are_inert_after_a_cop_retires() {
    use rvtrace::{ThreadId, TraceBuilder};
    let mut b = TraceBuilder::new();
    let main = ThreadId::MAIN;
    let p = b.fork(main);
    let c = b.fork(main);
    let l = b.new_lock("l");
    // Two double-justifier handoff blocks: the payload COP survives the
    // quick check, blinds Tier B (two same-value flag justifiers), fails
    // Tier A's replay, and the solver refutes it — learning clauses
    // while its selector is assumed.
    for k in 0..2 {
        let y = b.var(&format!("y{k}"));
        let f = b.var(&format!("f{k}"));
        b.write(p, y, 1);
        b.acquire(p, l);
        b.write(p, f, 1);
        b.release(p, l);
        b.acquire(p, l);
        b.write(p, f, 1);
        b.release(p, l);
        b.acquire(c, l);
        b.read(c, f, 1);
        b.release(c, l);
        b.branch(c);
        b.read(c, y, 1);
    }
    // The late COP: a sync-free racy pair checked *after* both refuted
    // COPs retired. Retained clauses must not be able to refute it.
    let x = b.var("x");
    b.write(p, x, 1);
    b.write(c, x, 2);
    let trace = b.finish();

    let mut baseline: Option<String> = None;
    for tiers in [true, false] {
        for incremental in [true, false] {
            for batch in [true, false] {
                let cfg = DetectorConfig {
                    tiers,
                    incremental,
                    batch_windows: batch,
                    ..Default::default()
                };
                let report = RaceDetector::with_config(cfg).detect(&trace);
                assert_eq!(report.n_races(), 1, "the late COP stays a race");
                assert_eq!(report.stats.unsat, 2, "both handoff COPs stay refuted");
                if tiers {
                    // Tier A confirms the sync-free late COP directly; the
                    // two handoff COPs still retire through the session. The
                    // tiers-off leg is the full poison ordering: the same
                    // session refutes both handoff COPs and *then* must still
                    // find the late COP satisfiable.
                    assert_eq!(report.stats.tier_residue, 2);
                    assert_eq!(report.stats.tier_confirmed, 1);
                } else {
                    assert_eq!(report.stats.sat, 1, "the solver itself finds the race");
                }
                let fp = verdict_fingerprint(&report);
                match &baseline {
                    None => baseline = Some(fp),
                    Some(b) => assert_eq!(
                        &fp, b,
                        "tiers={tiers} incremental={incremental} batch={batch} diverged"
                    ),
                }
            }
        }
    }
}

/// The `--portfolio` A/B check, randomized: racing the session query
/// against the tier screens (on a cancellable clone of the session
/// solver) must keep the *whole report* — verdicts, witnesses, solver
/// effort, count-type counters — byte-identical to portfolio-off, at
/// every worker count. Compared via `deterministic_summary`, the
/// strictest rendering the repo has.
#[test]
fn portfolio_reports_are_byte_identical() {
    let mut rng = SmallRng::seed_from_u64(0x90F0);
    // `PROPTEST_CASES` kept its name when the suite moved off proptest.
    let cases: usize = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let mut checked = 0;
    for _attempt in 0..cases * 40 {
        if checked == cases {
            break;
        }
        let workers = gen_ops_sized(&mut rng);
        let program = build(&workers);
        let seed = rng.gen_range(0..400u64);
        let exec = execute(&program, &ExecConfig::seeded(seed)).unwrap();
        if exec.outcome != Outcome::Completed || exec.trace.len() < 6 || exec.trace.len() > 40 {
            continue;
        }
        checked += 1;
        let trace = &exec.trace;
        // Portfolio races per-COP session queries, so pin the per-COP
        // incremental mode on both sides of the comparison.
        let mut baseline: Option<String> = None;
        for portfolio in [false, true] {
            for jobs in [1usize, 2, 4, 8] {
                let cfg = DetectorConfig {
                    window_size: 16,
                    batch_windows: false,
                    incremental: true,
                    portfolio,
                    parallelism: jobs,
                    ..Default::default()
                };
                let summary = RaceDetector::with_config(cfg)
                    .detect(trace)
                    .deterministic_summary();
                match &baseline {
                    None => baseline = Some(summary),
                    Some(b) => assert_eq!(
                        &summary,
                        b,
                        "portfolio={portfolio} jobs={jobs} diverged on trace {:?}",
                        trace.events()
                    ),
                }
            }
        }
    }
    assert_eq!(checked, cases, "not enough small completed executions");
}
