//! The paper's headline empirical claim (Table 1): on every benchmark the
//! maximal technique detects a *superset* of the races of every other sound
//! technique, and HB ⊆ CP.
//!
//! These tests run the full small-benchmark suite (example + contest +
//! grande classes) through all four detectors. The slow system-class rows
//! are covered by the `table1` harness binary instead.

use rvpredict::{CpDetector, HbDetector, MaximalDetector, RaceDetectorTool, SaidDetector};
use rvsim::workloads;

#[test]
fn maximal_detects_superset_on_small_suite() {
    let rv = MaximalDetector::default();
    let said = SaidDetector::default();
    let cp = CpDetector::default();
    let hb = HbDetector::default();
    for w in workloads::small_suite() {
        let r = rv.detect_races(&w.trace);
        let s = said.detect_races(&w.trace);
        let c = cp.detect_races(&w.trace);
        let h = hb.detect_races(&w.trace);
        assert!(
            s.signatures.is_subset(&r.signatures),
            "{}: Said ⊄ RV ({} vs {})",
            w.name,
            s.n_races(),
            r.n_races()
        );
        assert!(
            c.signatures.is_subset(&r.signatures),
            "{}: CP ⊄ RV ({} vs {})",
            w.name,
            c.n_races(),
            r.n_races()
        );
        assert!(
            h.signatures.is_subset(&r.signatures),
            "{}: HB ⊄ RV ({} vs {})",
            w.name,
            h.n_races(),
            r.n_races()
        );
        assert!(
            h.signatures.is_subset(&c.signatures),
            "{}: HB ⊄ CP ({} vs {})",
            w.name,
            h.n_races(),
            c.n_races()
        );
    }
}

#[test]
fn maximal_strictly_beats_baselines_somewhere() {
    let rv = MaximalDetector::default();
    let cp = CpDetector::default();
    let mut strict = 0usize;
    for w in workloads::small_suite() {
        let r = rv.detect_races(&w.trace);
        let c = cp.detect_races(&w.trace);
        if r.n_races() > c.n_races() {
            strict += 1;
        }
    }
    assert!(
        strict >= 2,
        "RV should strictly beat CP on several benchmarks, got {strict}"
    );
}

#[test]
fn detectors_agree_on_race_free_series() {
    let w = workloads::small_suite()
        .into_iter()
        .find(|w| w.name == "series")
        .unwrap();
    for tool in [
        Box::new(MaximalDetector::default()) as Box<dyn RaceDetectorTool>,
        Box::new(SaidDetector::default()),
        Box::new(CpDetector::default()),
        Box::new(HbDetector::default()),
    ] {
        assert_eq!(tool.detect_races(&w.trace).n_races(), 0, "{}", tool.name());
    }
}

/// The QC column is a superset of every sound technique's result (it is the
/// unsound hybrid filter of paper §4).
#[test]
fn quick_check_superset() {
    use rvcore::enumerate_cops;
    use rvpredict::{RaceDetector, ViewExt};
    for w in workloads::small_suite() {
        let report = RaceDetector::new().detect(&w.trace);
        let mut qc_total = 0;
        for view in w.trace.windows(10_000) {
            qc_total += enumerate_cops(&view, true, 10).qc_signatures;
        }
        assert!(
            report.n_races() <= qc_total,
            "{}: races {} > QC {}",
            w.name,
            report.n_races(),
            qc_total
        );
    }
}
