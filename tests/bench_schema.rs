//! Schema tests for the bench harnesses: `BENCH_pr3.json` (the
//! observability PR's detection pipeline), `BENCH_pr4.json` (the
//! streaming PR's whole-file-vs-streamed comparison), `BENCH_pr5.json`
//! (the relevance-slicing on/off comparison), `BENCH_pr6.json` (the
//! tiered-cascade on/off comparison), `BENCH_pr7.json` (the
//! multi-tenant session manager vs solo runs), `BENCH_pr8.json` (the
//! fixed-vs-cone window-mode comparison on boundary-handoff workloads)
//! `BENCH_pr9.json` (the multi-class violation benchmark behind the
//! `--kind` axis) and `BENCH_pr10.json` (the hot-path overhaul vs the
//! PR4-era baseline pipeline). Each smoke run must emit a document that
//! validates, parses with the in-tree JSON reader, and carries the
//! invariants the schema documents.
//!
//! When `BENCH_PR3_PATH` / `BENCH_PR4_PATH` / `BENCH_PR5_PATH` /
//! `BENCH_PR6_PATH` / `BENCH_PR7_PATH` / `BENCH_PR8_PATH` /
//! `BENCH_PR9_PATH` / `BENCH_PR10_PATH` are set (CI's bench-smoke steps
//! export them after running the `pipeline`, `stream_pipeline`,
//! `slice_pipeline`, `tier_pipeline`, `serve_pipeline`,
//! `boundary_pipeline`, `kind_pipeline` and `perf_pipeline` binaries),
//! the files they name are validated too, so a committed or freshly
//! generated document cannot drift from the schema.
//!
//! A cross-PR trend gate closes the loop: when the committed full-mode
//! `BENCH_pr10.json` and `BENCH_pr4.json` are both present, the
//! overhauled pipeline's end-to-end wall clock on the shared 100K-event
//! `stream_large` workload must beat the PR4-era measurement.

use rvbench::boundary::{
    run_boundary_pipeline, smoke_boundary_workloads, validate_boundary_bench_json,
    BoundaryBenchOptions, BOUNDARY_BENCH_SCHEMA_VERSION, BOUNDARY_BENCH_SUITE,
};
use rvbench::kind::{
    run_kind_pipeline, smoke_kind_workloads, validate_kind_bench_json, KindBenchOptions,
    KIND_BENCH_SCHEMA_VERSION, KIND_BENCH_SUITE,
};
use rvbench::perf::{
    run_perf_pipeline, smoke_perf_workloads, validate_perf_bench_json, PerfBenchOptions,
    PERF_BENCH_SCHEMA_VERSION, PERF_BENCH_SUITE,
};
use rvbench::pipeline::{
    run_pipeline, smoke_workloads, validate_bench_json, PipelineOptions, BENCH_SCHEMA_VERSION,
};
use rvbench::serve::{
    run_serve_pipeline, tenant_mix_workload, validate_serve_bench_json, ServeBenchOptions,
    SERVE_BENCH_SCHEMA_VERSION, SERVE_BENCH_SUITE,
};
use rvbench::slice::{
    run_slice_pipeline, validate_slice_bench_json, wide_window_workload, SliceBenchOptions,
    SLICE_BENCH_SCHEMA_VERSION, SLICE_BENCH_SUITE,
};
use rvbench::stream::{
    racy_stream_workload, run_stream_pipeline, validate_stream_bench_json, StreamBenchOptions,
    STREAM_BENCH_SCHEMA_VERSION, STREAM_BENCH_SUITE,
};
use rvbench::tier::{
    run_tier_pipeline, smoke_tier_workloads, validate_tier_bench_json, TierBenchOptions,
    TIER_BENCH_SCHEMA_VERSION, TIER_BENCH_SUITE,
};
use rvtrace::parse_json;

/// Validates the bench document a CI env var points at against the
/// suite's own validator. A no-op when the variable is unset, so plain
/// `cargo test` needs no generated artifacts.
fn validate_env_bench_file(var: &str, validate: fn(&str) -> Result<(), String>) {
    let Ok(path) = std::env::var(var) else {
        return;
    };
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{var}={path} is unreadable: {e}"));
    validate(&json).unwrap_or_else(|e| panic!("{path} violates the schema: {e}"));
}

fn smoke_document() -> String {
    run_pipeline(&smoke_workloads(), &PipelineOptions::default())
}

/// The smoke pipeline (Figure 1 only) emits a valid version-1 document.
#[test]
fn smoke_run_validates_against_schema() {
    let json = smoke_document();
    validate_bench_json(&json).unwrap_or_else(|e| panic!("schema violation: {e}\n{json}"));
}

/// Cross-check the emitted document with the in-tree parser: tags, the
/// verdict partition, and totals consistency — independent of the
/// validator's own logic.
#[test]
fn smoke_run_parses_and_keeps_invariants() {
    let json = smoke_document();
    let doc = parse_json(&json).expect("document must parse with rvtrace::parse_json");
    assert_eq!(
        doc.field("schema_version")
            .and_then(|v| v.as_int())
            .unwrap(),
        BENCH_SCHEMA_VERSION as i64
    );
    assert_eq!(doc.field("suite").and_then(|v| v.as_str()).unwrap(), "pr3");
    let entries = doc.field("workloads").and_then(|v| v.as_array()).unwrap();
    assert_eq!(entries.len(), 1, "smoke mode runs exactly Figure 1");
    let w = &entries[0];
    let int = |key: &str| w.field(key).and_then(|v| v.as_int()).unwrap();
    assert!(w
        .field("name")
        .and_then(|v| v.as_str())
        .unwrap()
        .starts_with("example"));
    // Figure 1 is the paper's motivating example: one predictable race.
    assert_eq!(int("races"), 1);
    assert!(int("events") > 0);
    assert_eq!(
        int("cops_solved"),
        int("sat") + int("unsat") + int("undecided")
    );
    assert!(int("solver_decisions") >= 0);
    let totals = doc.field("totals").unwrap();
    let total = |key: &str| totals.field(key).and_then(|v| v.as_int()).unwrap();
    assert_eq!(total("workloads"), 1);
    assert_eq!(total("events"), int("events"));
    assert_eq!(total("races"), int("races"));
    assert_eq!(total("cops_solved"), int("cops_solved"));
}

/// Count-type fields of the document are deterministic for a given build:
/// two runs differ only in the `*_time_us` wall-clock fields.
#[test]
fn smoke_run_counters_are_deterministic() {
    let strip_times = |json: &str| -> String {
        json.lines()
            .map(|l| {
                let mut l = l.to_string();
                for key in ["wall_time_us", "solver_time_us"] {
                    if let Some(start) = l.find(&format!("\"{key}\": ")) {
                        let rest = &l[start..];
                        let end = rest
                            .find(|c: char| c == ',' || c == '}')
                            .unwrap_or(rest.len());
                        l = format!("{}\"{key}\": X{}", &l[..start], &l[start + end..]);
                    }
                }
                l
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    let a = strip_times(&smoke_document());
    let b = strip_times(&smoke_document());
    assert_eq!(a, b, "count-type fields must not vary run to run");
}

/// The validator is load-bearing: corrupted documents must be rejected
/// with a pointed message.
#[test]
fn validator_rejects_corruption() {
    let json = smoke_document();
    for (needle, replacement, expect) in [
        ("\"suite\": \"pr3\"", "\"suite\": \"pr4\"", "suite"),
        (
            "\"schema_version\": 1",
            "\"schema_version\": 2",
            "schema_version",
        ),
        ("\"sat\": 1", "\"sat\": 2", "cops_solved"),
        ("\"workloads\": 1", "\"workloads\": 7", "totals.workloads"),
    ] {
        let tampered = json.replace(needle, replacement);
        assert_ne!(tampered, json, "tamper needle `{needle}` did not hit");
        let err = validate_bench_json(&tampered)
            .expect_err(&format!("tampering `{needle}` must be rejected"));
        assert!(
            err.contains(expect),
            "error for `{needle}` should mention `{expect}`, got: {err}"
        );
    }
}

/// When CI (or a developer) points `BENCH_PR3_PATH` at a generated
/// `BENCH_pr3.json`, it must satisfy the same schema. Skipped when the
/// variable is unset so plain `cargo test` needs no artifacts.
#[test]
fn generated_bench_file_validates_when_present() {
    validate_env_bench_file("BENCH_PR3_PATH", validate_bench_json);
}

// ---------------------------------------------------------- BENCH_pr4

/// A deliberately tiny streaming workload: the schema tests need the
/// document's shape, not the smoke workload's scale.
fn stream_document() -> String {
    let w = racy_stream_workload("schema_tiny", 60);
    let opts = StreamBenchOptions {
        window_size: 20,
        ..Default::default()
    };
    run_stream_pipeline(&[w], &opts, "smoke")
}

/// The streaming comparison emits a valid version-1 `pr4` document.
#[test]
fn stream_run_validates_against_schema() {
    let json = stream_document();
    validate_stream_bench_json(&json).unwrap_or_else(|e| panic!("schema violation: {e}\n{json}"));
}

/// Cross-check with the in-tree parser: tags, the races-equality
/// invariant, and per-pipeline key completeness — independent of the
/// validator's own logic.
#[test]
fn stream_run_parses_and_keeps_invariants() {
    let json = stream_document();
    let doc = parse_json(&json).expect("document must parse with rvtrace::parse_json");
    assert_eq!(
        doc.field("schema_version")
            .and_then(|v| v.as_int())
            .unwrap(),
        STREAM_BENCH_SCHEMA_VERSION as i64
    );
    assert_eq!(
        doc.field("suite").and_then(|v| v.as_str()).unwrap(),
        STREAM_BENCH_SUITE
    );
    assert_eq!(doc.field("mode").and_then(|v| v.as_str()).unwrap(), "smoke");
    let entries = doc.field("workloads").and_then(|v| v.as_array()).unwrap();
    assert_eq!(entries.len(), 1);
    let w = &entries[0];
    assert!(w.field("events").and_then(|v| v.as_int()).unwrap() > 0);
    assert!(w.field("windows").and_then(|v| v.as_int()).unwrap() > 1);
    let races = |pipeline: &str| {
        w.field(pipeline)
            .and_then(|p| p.field("races"))
            .and_then(|v| v.as_int())
            .unwrap()
    };
    // The determinism contract, measured end to end: streaming must not
    // change the verdict.
    assert_eq!(races("whole_file"), races("streamed"));
    assert_eq!(
        races("whole_file"),
        1,
        "the workload plants exactly one race"
    );
}

/// The streaming validator rejects tampered documents pointedly.
#[test]
fn stream_validator_rejects_corruption() {
    let json = stream_document();
    for (needle, replacement, expect) in [
        ("\"suite\": \"pr4\"", "\"suite\": \"pr3\"", "suite"),
        (
            "\"schema_version\": 1",
            "\"schema_version\": 9",
            "schema_version",
        ),
        ("\"mode\": \"smoke\"", "\"mode\": \"casual\"", "mode"),
    ] {
        let tampered = json.replace(needle, replacement);
        assert_ne!(tampered, json, "tamper needle `{needle}` did not hit");
        let err = validate_stream_bench_json(&tampered)
            .expect_err(&format!("tampering `{needle}` must be rejected"));
        assert!(
            err.contains(expect),
            "error for `{needle}` should mention `{expect}`, got: {err}"
        );
    }
    // A verdict mismatch between the pipelines is a determinism violation
    // the validator must catch.
    let tampered = json.replacen("\"races\": 1", "\"races\": 2", 1);
    assert_ne!(tampered, json);
    let err = validate_stream_bench_json(&tampered).expect_err("races mismatch must be rejected");
    assert!(err.contains("must not change the verdict"), "got: {err}");
}

/// When CI (or a developer) points `BENCH_PR4_PATH` at a generated
/// `BENCH_pr4.json`, it must satisfy the same schema — including, for
/// `"full"` documents, the streamed pipeline strictly ahead on the
/// largest workload. Skipped when the variable is unset.
#[test]
fn generated_stream_bench_file_validates_when_present() {
    validate_env_bench_file("BENCH_PR4_PATH", validate_stream_bench_json);
}

// ---------------------------------------------------------- BENCH_pr5

/// A deliberately tiny wide-window workload: shape over scale.
fn slice_document() -> String {
    let w = wide_window_workload("schema_tiny", 2, 3);
    run_slice_pipeline(&[w], &SliceBenchOptions::default(), "smoke")
}

/// The slicing comparison emits a valid version-1 `pr5` document.
#[test]
fn slice_run_validates_against_schema() {
    let json = slice_document();
    validate_slice_bench_json(&json).unwrap_or_else(|e| panic!("schema violation: {e}\n{json}"));
}

/// Cross-check with the in-tree parser: tags, the races-equality
/// invariant, and the cone actually shrinking — independent of the
/// validator's own logic.
#[test]
fn slice_run_parses_and_keeps_invariants() {
    let json = slice_document();
    let doc = parse_json(&json).expect("document must parse with rvtrace::parse_json");
    assert_eq!(
        doc.field("schema_version")
            .and_then(|v| v.as_int())
            .unwrap(),
        SLICE_BENCH_SCHEMA_VERSION as i64
    );
    assert_eq!(
        doc.field("suite").and_then(|v| v.as_str()).unwrap(),
        SLICE_BENCH_SUITE
    );
    assert_eq!(doc.field("mode").and_then(|v| v.as_str()).unwrap(), "smoke");
    let entries = doc.field("workloads").and_then(|v| v.as_array()).unwrap();
    assert_eq!(entries.len(), 1);
    let w = &entries[0];
    assert!(w.field("events").and_then(|v| v.as_int()).unwrap() > 0);
    let run = |key: &str, field: &str| {
        w.field(key)
            .and_then(|p| p.field(field))
            .and_then(|v| v.as_int())
            .unwrap()
    };
    // The soundness contract, measured end to end: slicing must not
    // change the verdict.
    assert_eq!(run("sliced", "races"), run("unsliced", "races"));
    assert!(
        run("sliced", "races") >= 1,
        "the workload plants a real race"
    );
    // The cone must actually shrink, and only in the sliced run.
    assert!(run("sliced", "cone_events") < run("sliced", "window_events"));
    assert_eq!(
        run("unsliced", "cone_events"),
        run("unsliced", "window_events")
    );
    assert!(run("sliced", "constraints") < run("unsliced", "constraints"));
}

/// The slicing validator rejects tampered documents pointedly.
#[test]
fn slice_validator_rejects_corruption() {
    let json = slice_document();
    for (needle, replacement, expect) in [
        ("\"suite\": \"pr5\"", "\"suite\": \"pr4\"", "suite"),
        (
            "\"schema_version\": 1",
            "\"schema_version\": 9",
            "schema_version",
        ),
        ("\"mode\": \"smoke\"", "\"mode\": \"casual\"", "mode"),
    ] {
        let tampered = json.replace(needle, replacement);
        assert_ne!(tampered, json, "tamper needle `{needle}` did not hit");
        let err = validate_slice_bench_json(&tampered)
            .expect_err(&format!("tampering `{needle}` must be rejected"));
        assert!(
            err.contains(expect),
            "error for `{needle}` should mention `{expect}`, got: {err}"
        );
    }
    // A verdict mismatch between the runs is a soundness violation the
    // validator must catch.
    let tampered = json.replacen("\"races\": 2", "\"races\": 3", 1);
    if tampered != json {
        let err =
            validate_slice_bench_json(&tampered).expect_err("races mismatch must be rejected");
        assert!(err.contains("must not change the verdict"), "got: {err}");
    }
}

/// When CI (or a developer) points `BENCH_PR5_PATH` at a generated
/// `BENCH_pr5.json`, it must satisfy the same schema — including, for
/// `"full"` documents, the ≥2x constraint reduction and ≥1.5x speedup on
/// the largest workload. Skipped when the variable is unset.
#[test]
fn generated_slice_bench_file_validates_when_present() {
    validate_env_bench_file("BENCH_PR5_PATH", validate_slice_bench_json);
}

// ---------------------------------------------------------- BENCH_pr6

/// A deliberately tiny tier-cascade workload: shape over scale.
fn tier_document() -> String {
    run_tier_pipeline(
        &smoke_tier_workloads(),
        &TierBenchOptions::default(),
        "smoke",
    )
}

/// The cascade comparison emits a valid version-1 `pr6` document.
#[test]
fn tier_run_validates_against_schema() {
    let json = tier_document();
    validate_tier_bench_json(&json).unwrap_or_else(|e| panic!("schema violation: {e}\n{json}"));
}

/// Cross-check with the in-tree parser: tags, the verdict-equality
/// invariant, the tier partition, and the solver actually going quiet in
/// the cascaded run — independent of the validator's own logic.
#[test]
fn tier_run_parses_and_keeps_invariants() {
    let json = tier_document();
    let doc = parse_json(&json).expect("document must parse with rvtrace::parse_json");
    assert_eq!(
        doc.field("schema_version")
            .and_then(|v| v.as_int())
            .unwrap(),
        TIER_BENCH_SCHEMA_VERSION as i64
    );
    assert_eq!(
        doc.field("suite").and_then(|v| v.as_str()).unwrap(),
        TIER_BENCH_SUITE
    );
    assert_eq!(doc.field("mode").and_then(|v| v.as_str()).unwrap(), "smoke");
    let entries = doc.field("workloads").and_then(|v| v.as_array()).unwrap();
    assert_eq!(entries.len(), 1);
    let w = &entries[0];
    assert!(w.field("events").and_then(|v| v.as_int()).unwrap() > 0);
    let run = |key: &str, field: &str| {
        w.field(key)
            .and_then(|p| p.field(field))
            .and_then(|v| v.as_int())
            .unwrap()
    };
    // The soundness contract, measured end to end: the cascade must not
    // change the verdict.
    for what in ["races", "sat", "unsat", "cops_solved"] {
        assert_eq!(run("tiers", what), run("no_tiers", what), "{what}");
    }
    assert_eq!(run("tiers", "races"), 1, "the workload plants one race");
    // Every COP is attributed to exactly one stage, and on this workload
    // the screens decide everything — zero solver calls.
    assert_eq!(
        run("tiers", "tier_confirmed")
            + run("tiers", "tier_refuted")
            + run("tiers", "tier_residue"),
        run("tiers", "cops_solved")
    );
    assert_eq!(run("tiers", "solver_solves"), 0);
    assert_eq!(
        run("no_tiers", "solver_solves"),
        run("no_tiers", "cops_solved")
    );
    for counter in ["tier_confirmed", "tier_refuted", "tier_residue"] {
        assert_eq!(run("no_tiers", counter), 0, "{counter}");
    }
}

/// The cascade validator rejects tampered documents pointedly.
#[test]
fn tier_validator_rejects_corruption() {
    let json = tier_document();
    for (needle, replacement, expect) in [
        ("\"suite\": \"pr6\"", "\"suite\": \"pr5\"", "suite"),
        (
            "\"schema_version\": 1",
            "\"schema_version\": 9",
            "schema_version",
        ),
        ("\"mode\": \"smoke\"", "\"mode\": \"casual\"", "mode"),
        // A verdict mismatch between the runs is a soundness violation.
        (
            "\"races\": 1",
            "\"races\": 2",
            "must not change the verdict",
        ),
    ] {
        let tampered = json.replacen(needle, replacement, 1);
        assert_ne!(tampered, json, "tamper needle `{needle}` did not hit");
        let err = validate_tier_bench_json(&tampered)
            .expect_err(&format!("tampering `{needle}` must be rejected"));
        assert!(
            err.contains(expect),
            "error for `{needle}` should mention `{expect}`, got: {err}"
        );
    }
}

/// When CI (or a developer) points `BENCH_PR6_PATH` at a generated
/// `BENCH_pr6.json`, it must satisfy the same schema — including, for
/// `"full"` documents, the ≥2x solver-call reduction and ≥1.3x speedup on
/// the largest workload. Skipped when the variable is unset.
#[test]
fn generated_tier_bench_file_validates_when_present() {
    validate_env_bench_file("BENCH_PR6_PATH", validate_tier_bench_json);
}

// ---------------------------------------------------------- BENCH_pr7

/// A deliberately tiny tenant pair: shape over scale. Two sessions over
/// one worker so even the schema run genuinely multiplexes.
fn serve_document() -> String {
    let tenants = vec![
        tenant_mix_workload("schema_a", 10),
        tenant_mix_workload("schema_b", 14),
    ];
    let opts = ServeBenchOptions {
        workers: 1,
        ..Default::default()
    };
    run_serve_pipeline(&tenants, &opts, "smoke")
}

/// The multi-tenant comparison emits a valid version-1 `pr7` document.
#[test]
fn serve_run_validates_against_schema() {
    let json = serve_document();
    validate_serve_bench_json(&json).unwrap_or_else(|e| panic!("schema violation: {e}\n{json}"));
}

/// Cross-check with the in-tree parser: tags, every session matching its
/// solo run, the planted race found by every tenant, zero shed windows,
/// zero cross-session diffs, and the killed tenant torn down —
/// independent of the validator's own logic.
#[test]
fn serve_run_parses_and_keeps_invariants() {
    let json = serve_document();
    let doc = parse_json(&json).expect("document must parse with rvtrace::parse_json");
    assert_eq!(
        doc.field("schema_version")
            .and_then(|v| v.as_int())
            .unwrap(),
        SERVE_BENCH_SCHEMA_VERSION as i64
    );
    assert_eq!(
        doc.field("suite").and_then(|v| v.as_str()).unwrap(),
        SERVE_BENCH_SUITE
    );
    assert_eq!(doc.field("mode").and_then(|v| v.as_str()).unwrap(), "smoke");
    let entries = doc.field("sessions").and_then(|v| v.as_array()).unwrap();
    assert_eq!(entries.len(), 2);
    for s in entries {
        assert!(s.field("events").and_then(|v| v.as_int()).unwrap() > 0);
        // Every tenant-mix trace plants exactly one real race at the head.
        assert_eq!(s.field("races").and_then(|v| v.as_int()).unwrap(), 1);
        assert_eq!(s.field("shed_windows").and_then(|v| v.as_int()).unwrap(), 0);
        // The determinism contract, measured end to end: a shared pool
        // must not change any tenant's report.
        assert!(s.field("solo_match").and_then(|v| v.as_bool()).unwrap());
    }
    assert_eq!(
        doc.field("cross_session_diffs")
            .and_then(|v| v.as_int())
            .unwrap(),
        0
    );
    let killed = doc.field("killed_session").unwrap();
    assert!(killed.field("torn_down").and_then(|v| v.as_bool()).unwrap());
    assert!(killed.field("fed_bytes").and_then(|v| v.as_int()).unwrap() > 0);
}

/// The serve validator rejects tampered documents pointedly.
#[test]
fn serve_validator_rejects_corruption() {
    let json = serve_document();
    for (needle, replacement, expect) in [
        ("\"suite\": \"pr7\"", "\"suite\": \"pr6\"", "suite"),
        (
            "\"schema_version\": 1",
            "\"schema_version\": 9",
            "schema_version",
        ),
        ("\"mode\": \"smoke\"", "\"mode\": \"casual\"", "mode"),
        // A drifted tenant is a determinism violation.
        (
            "\"solo_match\": true",
            "\"solo_match\": false",
            "drifted from the standalone run",
        ),
        // An un-torn-down kill is an isolation violation.
        (
            "\"torn_down\": true",
            "\"torn_down\": false",
            "must be torn down",
        ),
    ] {
        let tampered = json.replacen(needle, replacement, 1);
        assert_ne!(tampered, json, "tamper needle `{needle}` did not hit");
        let err = validate_serve_bench_json(&tampered)
            .expect_err(&format!("tampering `{needle}` must be rejected"));
        assert!(
            err.contains(expect),
            "error for `{needle}` should mention `{expect}`, got: {err}"
        );
    }
}

/// When CI (or a developer) points `BENCH_PR7_PATH` at a generated
/// `BENCH_pr7.json`, it must satisfy the same schema — including, for
/// `"full"` documents, more sessions than workers. Skipped when the
/// variable is unset.
#[test]
fn generated_serve_bench_file_validates_when_present() {
    validate_env_bench_file("BENCH_PR7_PATH", validate_serve_bench_json);
}

// ---------------------------------------------------------- BENCH_pr8

/// The smoke workload set itself: it already contains the oracle micro
/// workload, a small handoff and the non-straddling control, and runs in
/// about a second.
fn boundary_document() -> String {
    run_boundary_pipeline(
        &smoke_boundary_workloads(),
        &BoundaryBenchOptions::default(),
        "smoke",
    )
}

/// The window-mode comparison emits a valid version-1 `pr8` document.
#[test]
fn boundary_run_validates_against_schema() {
    let json = boundary_document();
    validate_boundary_bench_json(&json).unwrap_or_else(|e| panic!("schema violation: {e}\n{json}"));
}

/// Cross-check with the in-tree parser: tags, the fixed-mode blindness
/// and cone-mode recovery on every straddling workload, mode equality on
/// the control, and at least one oracle-confirmed fixed-mode miss —
/// independent of the validator's own logic.
#[test]
fn boundary_run_parses_and_keeps_invariants() {
    let json = boundary_document();
    let doc = parse_json(&json).expect("document must parse with rvtrace::parse_json");
    assert_eq!(
        doc.field("schema_version")
            .and_then(|v| v.as_int())
            .unwrap(),
        BOUNDARY_BENCH_SCHEMA_VERSION as i64
    );
    assert_eq!(
        doc.field("suite").and_then(|v| v.as_str()).unwrap(),
        BOUNDARY_BENCH_SUITE
    );
    assert_eq!(doc.field("mode").and_then(|v| v.as_str()).unwrap(), "smoke");
    // The smoke micro workload is oracle-arbitered: at least one race cone
    // mode reports and fixed mode misses is independently proved real.
    assert!(
        doc.field("oracle_confirmed_misses")
            .and_then(|v| v.as_int())
            .unwrap()
            >= 1
    );
    let entries = doc.field("workloads").and_then(|v| v.as_array()).unwrap();
    assert_eq!(entries.len(), 3);
    for w in entries {
        let straddling = w.field("straddling").and_then(|v| v.as_bool()).unwrap();
        let run = |key: &str, field: &str| {
            w.field(key)
                .and_then(|p| p.field(field))
                .and_then(|v| v.as_int())
                .unwrap()
        };
        // Fixed windows never look back: no straddle activity, ever.
        for counter in [
            "straddle_cops",
            "straddle_races",
            "boundary_over_budget",
            "spill_peak_events",
        ] {
            assert_eq!(run("fixed", counter), 0, "{counter}");
        }
        if straddling {
            // Every racing pair is astride a boundary by construction:
            // fixed mode is blind, the straddle pass recovers them all.
            assert_eq!(run("fixed", "races"), 0);
            assert!(run("cone", "races") >= 1);
            assert_eq!(run("cone", "races"), run("cone", "straddle_races"));
            assert_eq!(run("cone", "boundary_over_budget"), 0);
        } else {
            // Off the boundaries the modes must coincide exactly.
            for what in ["races", "straddle_races", "spill_peak_events", "undecided"] {
                assert_eq!(run("fixed", what), run("cone", what), "{what}");
            }
            assert!(run("fixed", "races") >= 1, "the control plants a race");
        }
    }
}

/// The window-mode validator rejects tampered documents pointedly.
#[test]
fn boundary_validator_rejects_corruption() {
    let json = boundary_document();
    for (needle, replacement, expect) in [
        ("\"suite\": \"pr8\"", "\"suite\": \"pr7\"", "suite"),
        (
            "\"schema_version\": 1",
            "\"schema_version\": 9",
            "schema_version",
        ),
        ("\"mode\": \"smoke\"", "\"mode\": \"casual\"", "mode"),
        // A fixed run with straddle activity breaks the mode contract.
        (
            "\"straddle_cops\": 0, \"straddle_races\": 0",
            "\"straddle_cops\": 1, \"straddle_races\": 0",
            "never look back",
        ),
        // Losing every oracle confirmation breaks the evidence chain.
        (
            "\"oracle_confirmed_misses\": 1",
            "\"oracle_confirmed_misses\": 0",
            "oracle_confirmed_misses",
        ),
    ] {
        let tampered = json.replacen(needle, replacement, 1);
        assert_ne!(tampered, json, "tamper needle `{needle}` did not hit");
        let err = validate_boundary_bench_json(&tampered)
            .expect_err(&format!("tampering `{needle}` must be rejected"));
        assert!(
            err.contains(expect),
            "error for `{needle}` should mention `{expect}`, got: {err}"
        );
    }
}

/// When CI (or a developer) points `BENCH_PR8_PATH` at a generated
/// `BENCH_pr8.json`, it must satisfy the same schema — fixed runs free of
/// straddle activity, spill residency within budget, cone strictly ahead
/// on straddling workloads, modes identical on the control, and at least
/// one oracle-confirmed miss. Skipped when the variable is unset.
#[test]
fn generated_boundary_bench_file_validates_when_present() {
    validate_env_bench_file("BENCH_PR8_PATH", validate_boundary_bench_json);
}

// ---------------------------------------------------------- BENCH_pr9

/// The smoke workload set itself: one micro workload per violation class
/// plus the gate-lock refutation control and the rwlock/channel
/// vocabulary controls — every one oracle-arbitered, sub-second.
fn kind_document() -> String {
    run_kind_pipeline(
        &smoke_kind_workloads(),
        &KindBenchOptions::default(),
        "smoke",
    )
}

/// The multi-class benchmark emits a valid version-1 `pr9` document.
#[test]
fn kind_run_validates_against_schema() {
    let json = kind_document();
    validate_kind_bench_json(&json).unwrap_or_else(|e| panic!("schema violation: {e}\n{json}"));
}

/// Cross-check with the in-tree parser: tags, full oracle agreement, all
/// three violation classes present, every verdict decided, the gate-lock
/// control refuted rather than missed — independent of the validator's
/// own logic.
#[test]
fn kind_run_parses_and_keeps_invariants() {
    let json = kind_document();
    let doc = parse_json(&json).expect("document must parse with rvtrace::parse_json");
    assert_eq!(
        doc.field("schema_version")
            .and_then(|v| v.as_int())
            .unwrap(),
        KIND_BENCH_SCHEMA_VERSION as i64
    );
    assert_eq!(
        doc.field("suite").and_then(|v| v.as_str()).unwrap(),
        KIND_BENCH_SUITE
    );
    assert_eq!(doc.field("mode").and_then(|v| v.as_str()).unwrap(), "smoke");
    // Every smoke workload is small enough for the brute-force oracle,
    // and the detectors must agree with it on each one.
    let checked = doc
        .field("oracle_checked")
        .and_then(|v| v.as_int())
        .unwrap();
    assert_eq!(checked, 6, "all six smoke workloads are oracle-arbitered");
    assert_eq!(
        doc.field("oracle_agreements")
            .and_then(|v| v.as_int())
            .unwrap(),
        checked
    );
    let entries = doc.field("workloads").and_then(|v| v.as_array()).unwrap();
    assert_eq!(entries.len(), 6);
    for w in entries {
        let name = w.field("name").and_then(|v| v.as_str()).unwrap();
        let expect = w
            .field("expect_violations")
            .and_then(|v| v.as_bool())
            .unwrap();
        let run = |field: &str| {
            w.field("run")
                .and_then(|r| r.field(field))
                .and_then(|v| v.as_int())
                .unwrap()
        };
        assert_eq!(run("unknown"), 0, "{name}: every candidate decided");
        assert_eq!(run("violations") > 0, expect, "{name}");
        if name == "deadlock_gated" {
            // The inverted pair exists syntactically; the gate lock makes
            // it infeasible. Enumeration must surface the candidate and
            // the solver must refute it.
            assert!(run("candidates") >= 1);
            assert!(run("unsat") >= 1);
            assert_eq!(run("sat"), 0);
        }
        if name == "deadlock_micro" {
            assert_eq!(run("violations"), 1, "one inversion, one cycle");
        }
    }
}

/// The kind validator rejects tampered documents pointedly.
#[test]
fn kind_validator_rejects_corruption() {
    let json = kind_document();
    for (needle, replacement, expect) in [
        ("\"suite\": \"pr9\"", "\"suite\": \"pr8\"", "suite"),
        (
            "\"schema_version\": 1",
            "\"schema_version\": 9",
            "schema_version",
        ),
        ("\"mode\": \"smoke\"", "\"mode\": \"casual\"", "mode"),
        // A detector/oracle split is the one thing this suite exists to
        // catch.
        (
            "\"oracle_agreements\": 6",
            "\"oracle_agreements\": 5",
            "oracle",
        ),
        // An undecided candidate on a micro workload breaks the contract.
        (
            "\"violations\": 1, \"candidates\": 1, \"sat\": 1, \"unsat\": 0, \"unknown\": 0",
            "\"violations\": 1, \"candidates\": 1, \"sat\": 1, \"unsat\": 0, \"unknown\": 1",
            "unknown",
        ),
    ] {
        let tampered = json.replacen(needle, replacement, 1);
        assert_ne!(tampered, json, "tamper needle `{needle}` did not hit");
        let err = validate_kind_bench_json(&tampered)
            .expect_err(&format!("tampering `{needle}` must be rejected"));
        assert!(
            err.contains(expect),
            "error for `{needle}` should mention `{expect}`, got: {err}"
        );
    }
}

/// When CI (or a developer) points `BENCH_PR9_PATH` at a generated
/// `BENCH_pr9.json`, it must satisfy the same schema — full oracle
/// agreement, every candidate decided, controls refuted rather than
/// missed, all three violation classes present. Skipped when the
/// variable is unset.
#[test]
fn generated_kind_bench_file_validates_when_present() {
    validate_env_bench_file("BENCH_PR9_PATH", validate_kind_bench_json);
}

// ---------------------------------------------------------------------
// BENCH_pr10.json — the hot-path overhaul vs the PR4-era baseline.
// ---------------------------------------------------------------------

fn perf_document() -> String {
    run_perf_pipeline(
        &smoke_perf_workloads(),
        &PerfBenchOptions::default(),
        "smoke",
    )
}

/// The smoke perf pipeline emits a valid version-1 document.
#[test]
fn perf_run_validates_against_schema() {
    let json = perf_document();
    validate_perf_bench_json(&json).unwrap_or_else(|e| panic!("schema violation: {e}\n{json}"));
}

/// Cross-check the emitted document with the in-tree parser: tags,
/// verdict equality between the two configurations, a clean baseline, a
/// recorded warmup pass, and portfolio byte-identity — independent of
/// the validator's own logic.
#[test]
fn perf_run_parses_and_keeps_invariants() {
    let json = perf_document();
    let doc = parse_json(&json).expect("document must parse with rvtrace::parse_json");
    assert_eq!(
        doc.field("schema_version")
            .and_then(|v| v.as_int())
            .unwrap(),
        PERF_BENCH_SCHEMA_VERSION as i64
    );
    assert_eq!(
        doc.field("suite").and_then(|v| v.as_str()).unwrap(),
        PERF_BENCH_SUITE
    );
    assert!(
        doc.field("warmup_iters").and_then(|v| v.as_int()).unwrap() >= 1,
        "the harness must run (and record) a warmup pass"
    );
    let entries = doc.field("workloads").and_then(|v| v.as_array()).unwrap();
    assert_eq!(entries.len(), 2, "smoke mode runs two workloads");
    for w in entries {
        let run = |key: &str, field: &str| {
            w.field(key)
                .and_then(|r| r.field(field))
                .and_then(|v| v.as_int())
                .unwrap()
        };
        for what in ["races", "sat", "unsat", "cops_solved"] {
            assert_eq!(
                run("baseline", what),
                run("optimized", what),
                "{what} must be identical between the configurations"
            );
        }
        // The baseline leg runs the PR4-era pipeline: no screens, no
        // slicing, and (with everything off) one fresh solve per COP.
        assert_eq!(run("baseline", "tier_confirmed"), 0);
        assert_eq!(run("baseline", "tier_refuted"), 0);
        assert_eq!(run("baseline", "tier_residue"), 0);
        assert_eq!(run("baseline", "sliced_out"), 0);
        assert_eq!(
            run("baseline", "solver_solves"),
            run("baseline", "cops_solved")
        );
    }
    // The residue workload must actually exercise the sliced incremental
    // solver under the optimized configuration.
    let residue = entries
        .iter()
        .find(|w| {
            w.field("name")
                .and_then(|v| v.as_str())
                .is_ok_and(|n| n.starts_with("residue"))
        })
        .expect("smoke set carries a residue workload");
    let opt = residue.field("optimized").unwrap();
    let get = |f: &str| opt.field(f).and_then(|v| v.as_int()).unwrap();
    assert!(get("tier_residue") > 0, "screens must leave a residue");
    assert!(get("sliced_out") > 0, "the slicer must slice");
    assert!(get("solver_solves") > 0, "the session must solve");
    let portfolio = doc.field("portfolio").unwrap();
    let p = |f: &str| portfolio.field(f).and_then(|v| v.as_int()).unwrap();
    assert_eq!(
        p("matched"),
        p("configs"),
        "portfolio on/off × jobs must stay byte-identical"
    );
    assert!(
        p("configs") >= 8,
        "the matrix covers 2 portfolio modes × 4 job counts"
    );
}

/// The validator is load-bearing: corrupted documents must be rejected
/// with a pointed message.
#[test]
fn perf_validator_rejects_corruption() {
    let json = perf_document();
    for (needle, replacement, expect) in [
        ("\"suite\": \"pr10\"", "\"suite\": \"pr11\"", "suite"),
        (
            "\"schema_version\": 1",
            "\"schema_version\": 3",
            "schema_version",
        ),
        ("\"mode\": \"smoke\"", "\"mode\": \"fast\"", "mode"),
        // A verdict split between the configurations is the one thing
        // this suite exists to catch.
        (
            "\"unsat\": 48, \"cops_solved\": 49",
            "\"unsat\": 47, \"cops_solved\": 49",
            "verdict",
        ),
        // The harness must have warmed up before sampling.
        ("\"warmup_iters\": 1", "\"warmup_iters\": 0", "warmup_iters"),
        // A portfolio divergence breaks the determinism contract.
        ("\"matched\": 8", "\"matched\": 6", "byte-identical"),
    ] {
        let tampered = json.replacen(needle, replacement, 1);
        assert_ne!(tampered, json, "tamper needle `{needle}` did not hit");
        let err = validate_perf_bench_json(&tampered)
            .expect_err(&format!("tampering `{needle}` must be rejected"));
        assert!(
            err.contains(expect),
            "error for `{needle}` should mention `{expect}`, got: {err}"
        );
    }
}

/// When CI (or a developer) points `BENCH_PR10_PATH` at a generated
/// `BENCH_pr10.json`, it must satisfy the same schema — verdict
/// equality, a clean baseline, the speedup floor and the nonzero
/// optimizer counters on full documents, portfolio byte-identity.
/// Skipped when the variable is unset.
#[test]
fn generated_perf_bench_file_validates_when_present() {
    validate_env_bench_file("BENCH_PR10_PATH", validate_perf_bench_json);
}

/// The cross-PR trend gate: the committed full-mode `BENCH_pr10.json`
/// must beat the committed `BENCH_pr4.json` on the shared 100K-event
/// `stream_large` workload — the overhauled end-to-end pipeline
/// (optimized leg, parse included) against the PR4-era whole-file
/// pipeline, as measured and committed by each PR. Both documents are
/// committed artifacts, so the comparison is deterministic; the gate
/// skips only when either file is absent or not a full run (e.g. a
/// checkout that regenerated one in smoke mode).
#[test]
fn perf_trend_gate_beats_pr4_baseline_on_stream_large() {
    let root = env!("CARGO_MANIFEST_DIR");
    let read = |name: &str| std::fs::read_to_string(format!("{root}/{name}")).ok();
    let (Some(pr10), Some(pr4)) = (read("BENCH_pr10.json"), read("BENCH_pr4.json")) else {
        eprintln!("trend gate skipped: committed bench documents not present");
        return;
    };
    let stream_large_wall = |json: &str, run_key: &str| -> Option<i64> {
        let doc = parse_json(json).ok()?;
        if doc.field("mode").and_then(|v| v.as_str()).ok()? != "full" {
            return None;
        }
        doc.field("workloads")
            .and_then(|v| v.as_array().map(<[_]>::to_vec))
            .ok()?
            .iter()
            .find(|w| {
                w.field("name")
                    .and_then(|v| v.as_str())
                    .is_ok_and(|n| n == "stream_large")
            })?
            .field(run_key)
            .and_then(|r| r.field("wall_time_us"))
            .and_then(|v| v.as_int())
            .ok()
    };
    let (Some(pr10_wall), Some(pr4_wall)) = (
        stream_large_wall(&pr10, "optimized"),
        stream_large_wall(&pr4, "whole_file"),
    ) else {
        eprintln!("trend gate skipped: stream_large full-mode entries not present");
        return;
    };
    assert!(
        pr10_wall < pr4_wall,
        "perf regression on the shared 100K-event workload: BENCH_pr10 optimized \
         wall ({pr10_wall}µs) does not beat the BENCH_pr4 whole-file baseline \
         ({pr4_wall}µs)"
    );
}
