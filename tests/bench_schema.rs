//! Schema tests for the `BENCH_pr3.json` harness (satellite of the
//! observability PR): the pipeline run over the smallest sim workload must
//! emit a document that validates, parses with the in-tree JSON reader,
//! and carries the invariants the schema documents.
//!
//! When `BENCH_PR3_PATH` is set (CI's bench-smoke step exports it after
//! running the `pipeline` binary), the file it names is validated too, so
//! a committed or freshly generated document cannot drift from the schema.

use rvbench::pipeline::{
    run_pipeline, smoke_workloads, validate_bench_json, PipelineOptions, BENCH_SCHEMA_VERSION,
};
use rvtrace::parse_json;

fn smoke_document() -> String {
    run_pipeline(&smoke_workloads(), &PipelineOptions::default())
}

/// The smoke pipeline (Figure 1 only) emits a valid version-1 document.
#[test]
fn smoke_run_validates_against_schema() {
    let json = smoke_document();
    validate_bench_json(&json).unwrap_or_else(|e| panic!("schema violation: {e}\n{json}"));
}

/// Cross-check the emitted document with the in-tree parser: tags, the
/// verdict partition, and totals consistency — independent of the
/// validator's own logic.
#[test]
fn smoke_run_parses_and_keeps_invariants() {
    let json = smoke_document();
    let doc = parse_json(&json).expect("document must parse with rvtrace::parse_json");
    assert_eq!(
        doc.field("schema_version")
            .and_then(|v| v.as_int())
            .unwrap(),
        BENCH_SCHEMA_VERSION as i64
    );
    assert_eq!(doc.field("suite").and_then(|v| v.as_str()).unwrap(), "pr3");
    let entries = doc.field("workloads").and_then(|v| v.as_array()).unwrap();
    assert_eq!(entries.len(), 1, "smoke mode runs exactly Figure 1");
    let w = &entries[0];
    let int = |key: &str| w.field(key).and_then(|v| v.as_int()).unwrap();
    assert!(w
        .field("name")
        .and_then(|v| v.as_str())
        .unwrap()
        .starts_with("example"));
    // Figure 1 is the paper's motivating example: one predictable race.
    assert_eq!(int("races"), 1);
    assert!(int("events") > 0);
    assert_eq!(
        int("cops_solved"),
        int("sat") + int("unsat") + int("undecided")
    );
    assert!(int("solver_decisions") >= 0);
    let totals = doc.field("totals").unwrap();
    let total = |key: &str| totals.field(key).and_then(|v| v.as_int()).unwrap();
    assert_eq!(total("workloads"), 1);
    assert_eq!(total("events"), int("events"));
    assert_eq!(total("races"), int("races"));
    assert_eq!(total("cops_solved"), int("cops_solved"));
}

/// Count-type fields of the document are deterministic for a given build:
/// two runs differ only in the `*_time_us` wall-clock fields.
#[test]
fn smoke_run_counters_are_deterministic() {
    let strip_times = |json: &str| -> String {
        json.lines()
            .map(|l| {
                let mut l = l.to_string();
                for key in ["wall_time_us", "solver_time_us"] {
                    if let Some(start) = l.find(&format!("\"{key}\": ")) {
                        let rest = &l[start..];
                        let end = rest
                            .find(|c: char| c == ',' || c == '}')
                            .unwrap_or(rest.len());
                        l = format!("{}\"{key}\": X{}", &l[..start], &l[start + end..]);
                    }
                }
                l
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    let a = strip_times(&smoke_document());
    let b = strip_times(&smoke_document());
    assert_eq!(a, b, "count-type fields must not vary run to run");
}

/// The validator is load-bearing: corrupted documents must be rejected
/// with a pointed message.
#[test]
fn validator_rejects_corruption() {
    let json = smoke_document();
    for (needle, replacement, expect) in [
        ("\"suite\": \"pr3\"", "\"suite\": \"pr4\"", "suite"),
        (
            "\"schema_version\": 1",
            "\"schema_version\": 2",
            "schema_version",
        ),
        ("\"sat\": 1", "\"sat\": 2", "cops_solved"),
        ("\"workloads\": 1", "\"workloads\": 7", "totals.workloads"),
    ] {
        let tampered = json.replace(needle, replacement);
        assert_ne!(tampered, json, "tamper needle `{needle}` did not hit");
        let err = validate_bench_json(&tampered)
            .expect_err(&format!("tampering `{needle}` must be rejected"));
        assert!(
            err.contains(expect),
            "error for `{needle}` should mention `{expect}`, got: {err}"
        );
    }
}

/// When CI (or a developer) points `BENCH_PR3_PATH` at a generated
/// `BENCH_pr3.json`, it must satisfy the same schema. Skipped when the
/// variable is unset so plain `cargo test` needs no artifacts.
#[test]
fn generated_bench_file_validates_when_present() {
    let Ok(path) = std::env::var("BENCH_PR3_PATH") else {
        return;
    };
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("BENCH_PR3_PATH={path} is unreadable: {e}"));
    validate_bench_json(&json).unwrap_or_else(|e| panic!("{path} violates the schema: {e}"));
}
