//! The `rvpredict` command-line tool: read a serialized trace, run the
//! maximal race detector (or a baseline), and print the report.
//!
//! ```sh
//! rvpredict [OPTIONS] TRACE.json
//!
//! OPTIONS:
//!   --detector rv|said|cp|hb   technique to run (default rv)
//!   --window N                 window size in events (default 10000)
//!   --budget SECS              per-COP solver budget (default 60, as in the paper)
//!   --jobs N                   solve windows on N worker threads (default: all cores)
//!   --witnesses                print full witness schedules
//!   --lenient                  salvage a damaged trace: drop events violating the
//!                              consistency axioms (with per-category diagnostics)
//!                              instead of rejecting the file
//!   --retry-split              re-solve per-COP timeouts once in half-size windows
//!   --inject-fault W:C:KIND    (testing) inject a fault at window W, COP C;
//!                              KIND is panic, timeout or encode-error; repeatable
//!   --demo                     ignore TRACE and run the paper's Figure 1 instead
//! ```
//!
//! # Exit codes
//!
//! * `0` — detection completed, no races found, nothing left undecided;
//! * `1` — at least one race was found (and witness-validated);
//! * `2` — usage error, unreadable/unparsable trace file, or (in strict
//!   mode) a trace that violates the sequential-consistency axioms;
//! * `3` — detection completed and found no races, but some verdicts are
//!   missing (undecided COPs or failed windows): "no races" is *not*
//!   proven for the whole trace.
//!
//! Races dominate degradation: a run that both finds races and fails some
//! windows exits `1` (the found races are sound regardless).
//!
//! The trace format is the JSON serialization of [`rvpredict::Trace`]
//! (see [`rvpredict::to_json`]); any instrumentation front-end that can
//! emit the §2 event alphabet can produce it.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use rvpredict::{
    CpDetector, DetectorConfig, Fault, FaultPlan, HbDetector, RaceDetector, RaceDetectorTool,
    SaidDetector, Trace,
};

struct Options {
    detector: String,
    window: usize,
    budget: Duration,
    jobs: Option<usize>,
    witnesses: bool,
    lenient: bool,
    retry_split: bool,
    faults: Vec<(usize, usize, Fault)>,
    demo: bool,
    path: Option<String>,
}

/// Parses `W:C:KIND` into a fault coordinate.
fn parse_fault(spec: &str) -> Result<(usize, usize, Fault), String> {
    let mut parts = spec.splitn(3, ':');
    let window = parts
        .next()
        .and_then(|s| s.parse::<usize>().ok())
        .ok_or_else(|| format!("--inject-fault {spec}: bad window index"))?;
    let cop = parts
        .next()
        .and_then(|s| s.parse::<usize>().ok())
        .ok_or_else(|| format!("--inject-fault {spec}: bad COP index"))?;
    let fault = match parts.next() {
        Some("panic") => Fault::Panic,
        Some("timeout") => Fault::Timeout,
        Some("encode-error") => Fault::EncodeError,
        _ => {
            return Err(format!(
                "--inject-fault {spec}: kind must be panic, timeout or encode-error"
            ))
        }
    };
    Ok((window, cop, fault))
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        detector: "rv".into(),
        window: 10_000,
        budget: Duration::from_secs(60),
        jobs: None,
        witnesses: false,
        lenient: false,
        retry_split: false,
        faults: Vec::new(),
        demo: false,
        path: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--detector" => {
                opts.detector = args.get(i + 1).ok_or("--detector needs a value")?.clone();
                i += 2;
            }
            "--window" => {
                opts.window = args
                    .get(i + 1)
                    .ok_or("--window needs a value")?
                    .parse()
                    .map_err(|e| format!("--window: {e}"))?;
                i += 2;
            }
            "--budget" => {
                let secs: u64 = args
                    .get(i + 1)
                    .ok_or("--budget needs a value")?
                    .parse()
                    .map_err(|e| format!("--budget: {e}"))?;
                opts.budget = Duration::from_secs(secs);
                i += 2;
            }
            "--jobs" => {
                let jobs: usize = args
                    .get(i + 1)
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                opts.jobs = Some(jobs);
                i += 2;
            }
            "--witnesses" => {
                opts.witnesses = true;
                i += 1;
            }
            "--lenient" => {
                opts.lenient = true;
                i += 1;
            }
            "--retry-split" => {
                opts.retry_split = true;
                i += 1;
            }
            "--inject-fault" => {
                let spec = args.get(i + 1).ok_or("--inject-fault needs W:C:KIND")?;
                opts.faults.push(parse_fault(spec)?);
                i += 2;
            }
            "--demo" => {
                opts.demo = true;
                i += 1;
            }
            "--help" | "-h" => return Err("help".into()),
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            path => {
                opts.path = Some(path.to_string());
                i += 1;
            }
        }
    }
    Ok(opts)
}

fn usage() {
    eprintln!(
        "usage: rvpredict [--detector rv|said|cp|hb] [--window N] [--budget SECS] \
         [--jobs N] [--witnesses] [--lenient] [--retry-split] \
         [--inject-fault W:C:KIND]... (--demo | TRACE.json)"
    );
}

const EXIT_USAGE: u8 = 2;
const EXIT_RACES: u8 = 1;
const EXIT_DEGRADED: u8 = 3;

/// Loads the trace per the options. `Err` carries the exit code (always
/// [`EXIT_USAGE`]: bad file, bad JSON, or strict-mode inconsistency).
fn load_trace(opts: &Options) -> Result<Trace, ExitCode> {
    if opts.demo {
        return Ok(rvsim::workloads::figures::figure1().trace);
    }
    let Some(path) = &opts.path else {
        usage();
        return Err(ExitCode::from(EXIT_USAGE));
    };
    let data = match std::fs::read_to_string(path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return Err(ExitCode::from(EXIT_USAGE));
        }
    };
    if opts.lenient {
        let raw = match rvpredict::from_json_data(&data) {
            Ok(raw) => raw,
            Err(e) => {
                eprintln!("error: {path} is not a serialized trace: {e}");
                return Err(ExitCode::from(EXIT_USAGE));
            }
        };
        let (trace, report) = rvpredict::salvage_trace(raw);
        if !report.is_clean() {
            eprintln!("{report}");
        }
        Ok(trace)
    } else {
        let trace = match rvpredict::from_json(&data) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: {path} is not a serialized trace: {e}");
                return Err(ExitCode::from(EXIT_USAGE));
            }
        };
        let violations = rvpredict::check_consistency(&trace);
        if !violations.is_empty() {
            eprintln!("error: trace is not sequentially consistent:");
            for v in violations.iter().take(5) {
                eprintln!("  {v}");
            }
            if violations.len() > 5 {
                eprintln!("  ... and {} more", violations.len() - 5);
            }
            eprintln!("  (rerun with --lenient to salvage the consistent part)");
            return Err(ExitCode::from(EXIT_USAGE));
        }
        Ok(trace)
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}");
            }
            usage();
            return ExitCode::from(EXIT_USAGE);
        }
    };

    let trace = match load_trace(&opts) {
        Ok(t) => t,
        Err(code) => return code,
    };
    println!("trace: {}", trace.stats());

    match opts.detector.as_str() {
        "rv" => {
            let mut cfg = DetectorConfig {
                window_size: opts.window,
                solver_timeout: opts.budget,
                retry_split: opts.retry_split,
                ..Default::default()
            };
            if let Some(jobs) = opts.jobs {
                cfg.parallelism = jobs;
            }
            if !opts.faults.is_empty() {
                let mut plan = FaultPlan::new();
                for &(w, c, fault) in &opts.faults {
                    plan = plan.inject(w, c, fault);
                }
                cfg.fault_plan = Some(Arc::new(plan));
            }
            let report = RaceDetector::with_config(cfg).detect(&trace);
            println!("{report}");
            for race in &report.races {
                println!("  {}", race.display(&trace));
                if opts.witnesses {
                    println!("    witness: {}", race.schedule);
                }
            }
            if report.n_races() > 0 {
                ExitCode::from(EXIT_RACES)
            } else if report.is_degraded() {
                eprintln!(
                    "note: no races found, but {} COP(s) are undecided and {} window(s) \
                     failed — race freedom is not established for those",
                    report.stats.undecided, report.stats.failed_windows
                );
                ExitCode::from(EXIT_DEGRADED)
            } else {
                ExitCode::SUCCESS
            }
        }
        name @ ("said" | "cp" | "hb") => {
            let tool: Box<dyn RaceDetectorTool> = match name {
                "said" => {
                    let mut d = SaidDetector::default();
                    d.config.window_size = opts.window;
                    d.config.solver_timeout = opts.budget;
                    Box::new(d)
                }
                "cp" => Box::new(CpDetector {
                    window_size: opts.window,
                    ..Default::default()
                }),
                _ => Box::new(HbDetector {
                    window_size: opts.window,
                    ..Default::default()
                }),
            };
            let r = tool.detect_races(&trace);
            println!(
                "{}: {} race(s), {} pairs checked, {:?}",
                tool.name(),
                r.n_races(),
                r.pairs_checked,
                r.time
            );
            for sig in &r.signatures {
                println!("  {}", sig.display(&trace));
            }
            if r.n_races() > 0 {
                ExitCode::from(EXIT_RACES)
            } else {
                ExitCode::SUCCESS
            }
        }
        other => {
            eprintln!("error: unknown detector {other}");
            ExitCode::from(EXIT_USAGE)
        }
    }
}
