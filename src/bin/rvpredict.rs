//! The `rvpredict` command-line tool: read a serialized trace, run the
//! maximal race detector (or a baseline), and print the report.
//!
//! ```sh
//! rvpredict [OPTIONS] TRACE.json
//!
//! OPTIONS:
//!   --detector rv|said|cp|hb   technique to run (default rv)
//!   --window N                 window size in events (default 10000)
//!   --budget SECS              per-COP solver budget (default 60, as in the paper)
//!   --jobs N                   solve windows on N worker threads (default: all cores)
//!   --witnesses                print full witness schedules
//!   --demo                     ignore TRACE and run the paper's Figure 1 instead
//! ```
//!
//! The trace format is the JSON serialization of [`rvpredict::Trace`]
//! (see [`rvpredict::to_json`]); any instrumentation front-end that can
//! emit the §2 event alphabet can produce it.

use std::process::ExitCode;
use std::time::Duration;

use rvpredict::{
    CpDetector, DetectorConfig, HbDetector, RaceDetector, RaceDetectorTool, SaidDetector, Trace,
};

struct Options {
    detector: String,
    window: usize,
    budget: Duration,
    jobs: Option<usize>,
    witnesses: bool,
    demo: bool,
    path: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        detector: "rv".into(),
        window: 10_000,
        budget: Duration::from_secs(60),
        jobs: None,
        witnesses: false,
        demo: false,
        path: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--detector" => {
                opts.detector = args.get(i + 1).ok_or("--detector needs a value")?.clone();
                i += 2;
            }
            "--window" => {
                opts.window = args
                    .get(i + 1)
                    .ok_or("--window needs a value")?
                    .parse()
                    .map_err(|e| format!("--window: {e}"))?;
                i += 2;
            }
            "--budget" => {
                let secs: u64 = args
                    .get(i + 1)
                    .ok_or("--budget needs a value")?
                    .parse()
                    .map_err(|e| format!("--budget: {e}"))?;
                opts.budget = Duration::from_secs(secs);
                i += 2;
            }
            "--jobs" => {
                let jobs: usize = args
                    .get(i + 1)
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                opts.jobs = Some(jobs);
                i += 2;
            }
            "--witnesses" => {
                opts.witnesses = true;
                i += 1;
            }
            "--demo" => {
                opts.demo = true;
                i += 1;
            }
            "--help" | "-h" => return Err("help".into()),
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            path => {
                opts.path = Some(path.to_string());
                i += 1;
            }
        }
    }
    Ok(opts)
}

fn usage() {
    eprintln!(
        "usage: rvpredict [--detector rv|said|cp|hb] [--window N] [--budget SECS] \
         [--jobs N] [--witnesses] (--demo | TRACE.json)"
    );
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}");
            }
            usage();
            return ExitCode::from(2);
        }
    };

    let trace: Trace = if opts.demo {
        rvsim::workloads::figures::figure1().trace
    } else {
        let Some(path) = &opts.path else {
            usage();
            return ExitCode::from(2);
        };
        let data = match std::fs::read_to_string(path) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match rvpredict::from_json(&data) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: {path} is not a serialized trace: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let stats = trace.stats();
    println!("trace: {stats}");
    let violations = rvpredict::check_consistency(&trace);
    if !violations.is_empty() {
        eprintln!("warning: trace is not sequentially consistent:");
        for v in violations.iter().take(5) {
            eprintln!("  {v}");
        }
        eprintln!("  (detection verdicts are meaningless on inconsistent traces)");
    }

    match opts.detector.as_str() {
        "rv" => {
            let mut cfg = DetectorConfig {
                window_size: opts.window,
                solver_timeout: opts.budget,
                ..Default::default()
            };
            if let Some(jobs) = opts.jobs {
                cfg.parallelism = jobs;
            }
            let report = RaceDetector::with_config(cfg).detect(&trace);
            println!("{report}");
            for race in &report.races {
                println!("  {}", race.display(&trace));
                if opts.witnesses {
                    println!("    witness: {}", race.schedule);
                }
            }
        }
        name @ ("said" | "cp" | "hb") => {
            let tool: Box<dyn RaceDetectorTool> = match name {
                "said" => {
                    let mut d = SaidDetector::default();
                    d.config.window_size = opts.window;
                    d.config.solver_timeout = opts.budget;
                    Box::new(d)
                }
                "cp" => Box::new(CpDetector {
                    window_size: opts.window,
                    ..Default::default()
                }),
                _ => Box::new(HbDetector {
                    window_size: opts.window,
                    ..Default::default()
                }),
            };
            let r = tool.detect_races(&trace);
            println!(
                "{}: {} race(s), {} pairs checked, {:?}",
                tool.name(),
                r.n_races(),
                r.pairs_checked,
                r.time
            );
            for sig in &r.signatures {
                println!("  {}", sig.display(&trace));
            }
        }
        other => {
            eprintln!("error: unknown detector {other}");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}
