//! The `rvpredict` command-line tool: read a serialized trace, run the
//! maximal race detector (or a baseline), and print the report.
//!
//! ```sh
//! rvpredict [OPTIONS] TRACE.json
//!
//! OPTIONS:
//!   --detector rv|said|cp|hb   technique to run (default rv)
//!   --kind race|deadlock|atomicity|all
//!                              violation class to predict (default race; rv
//!                              detector only): `deadlock` finds predictable
//!                              circular lock waits, `atomicity` unserializable
//!                              interleavings of intended-atomic blocks, `all`
//!                              runs every class over one ingested trace
//!   --window N                 window size in events (default 10000)
//!   --budget SECS              per-COP solver budget (default 60, as in the paper)
//!   --timeout-ms MS            per-*window* wall-clock budget: when a window has
//!                              spent MS milliseconds, its remaining COPs are
//!                              recorded as undecided (timeout) instead of solved —
//!                              detection degrades (exit 3) rather than stalls
//!   --jobs N                   solve windows on N worker threads (default: all cores)
//!   --window-mode fixed|cone   window bounding discipline (default cone):
//!                              `cone` grows a boundary-straddling COP's view
//!                              backwards along its cone of influence so races
//!                              astride a window boundary are still predicted;
//!                              `fixed` keeps hard window edges (the pre-cone
//!                              behavior, for A/B checks). On traces with no
//!                              straddling pair the two are byte-identical
//!   --spill-budget BYTES       cap on retained cross-boundary lookback in cone
//!                              mode (default 4194304 = 4 MiB); a straddling COP
//!                              whose partner lies beyond the cap is reported
//!                              undecided (boundary-budget) instead of solved
//!                              on a truncated view
//!   --connect SOCK             run the detection in an rvserved daemon at unix
//!                              socket SOCK instead of in-process: the trace is
//!                              streamed over the socket and the daemon's reply is
//!                              byte-identical to the local run (rv detector only)
//!   --stream                   ingest the trace incrementally (JSON or NDJSON) and
//!                              start solving windows while the tail is still being
//!                              read; output is byte-identical to the whole-file run
//!   --witnesses                print full witness schedules
//!   --lenient                  salvage a damaged trace: drop events violating the
//!                              consistency axioms (with per-category diagnostics)
//!                              instead of rejecting the file
//!   --retry-split              re-solve per-COP timeouts once in half-size windows
//!   --no-slice                 disable relevance slicing (encode each COP over the
//!                              whole window instead of its cone of influence);
//!                              verdicts and witnesses are identical either way —
//!                              this exists for A/B checking and ablation
//!   --no-tiers                 disable the tiered pre-solver cascade (send every
//!                              COP straight to the SMT encoding instead of letting
//!                              the linear-time screens confirm/refute it first);
//!                              verdicts and witnesses are identical either way —
//!                              this exists for A/B checking and ablation
//!   --no-incremental           disable incremental solver sessions (rebuild the
//!                              solver for every per-COP query instead of retaining
//!                              learnt clauses across a window's COPs); verdicts
//!                              and witnesses are identical either way — this
//!                              exists for A/B checking and ablation
//!   --portfolio                race the incremental SMT query against the tier
//!                              screens per COP (first verdict wins, the loser is
//!                              cancelled); implies per-COP incremental sessions.
//!                              Reports, witnesses and count-type metrics are
//!                              byte-identical with the flag on or off
//!   --inject-fault W:C:KIND    (testing) inject a fault at window W, COP C;
//!                              KIND is panic, timeout or encode-error; repeatable
//!   --metrics OUT.json         write the run's metrics registry (versioned JSON:
//!                              counters, histograms, timings, gauges) to OUT.json
//!   --trace-log                log phase progress to stderr, with timestamps
//!   --demo                     ignore TRACE and run the paper's Figure 1 instead
//! ```
//!
//! `TRACE.json` may be `-` to read the trace from standard input (with or
//! without `--stream`). With `--stream` the trace may also be NDJSON (one
//! metadata header object, then one event object per line); the format is
//! auto-detected.
//!
//! The `--metrics` document separates count-type metrics (counters,
//! histograms — byte-identical at every `--jobs` level and identical
//! between `--stream` and whole-file runs) from wall-clock timings and
//! gauges (`timings_us`, `gauges` — machine- and run-dependent); see
//! DESIGN.md's "Observability" section for the schema and the
//! determinism contract.
//!
//! # Exit codes
//!
//! * `0` — detection completed, no races found, nothing left undecided;
//! * `1` — at least one race was found (and witness-validated);
//! * `2` — usage error, unreadable/unparsable trace file, or (in strict
//!   mode) a trace that violates the sequential-consistency axioms;
//! * `3` — detection completed and found no races, but some verdicts are
//!   missing (undecided COPs or failed windows): "no races" is *not*
//!   proven for the whole trace.
//!
//! Races dominate degradation: a run that both finds races and fails some
//! windows exits `1` (the found races are sound regardless).
//!
//! The trace format is the JSON serialization of [`rvpredict::Trace`]
//! (see [`rvpredict::to_json`]); any instrumentation front-end that can
//! emit the §2 event alphabet can produce it.

use std::io::{Read as _, Write as _};
use std::os::unix::net::UnixStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use rvpredict::driver::{self, SessionRequest, EXIT_RACES, EXIT_USAGE};
use rvpredict::{
    read_frame, write_frame, CpDetector, DetectionReport, Fault, HbDetector, Metrics, RaceDetector,
    RaceDetectorTool, SaidDetector, Trace, TraceData, WindowMode,
};

struct Options {
    detector: String,
    kind: driver::Kind,
    window: usize,
    budget: Duration,
    timeout_ms: Option<u64>,
    jobs: Option<usize>,
    window_mode: WindowMode,
    spill_budget: Option<usize>,
    connect: Option<String>,
    stream: bool,
    witnesses: bool,
    lenient: bool,
    retry_split: bool,
    no_slice: bool,
    no_tiers: bool,
    no_incremental: bool,
    portfolio: bool,
    faults: Vec<(usize, usize, Fault)>,
    metrics: Option<String>,
    trace_log: bool,
    demo: bool,
    path: Option<String>,
}

impl Options {
    /// The detector settings as the daemon protocol's request header —
    /// also the single source of the local `rv` configuration, so a
    /// `--connect` run and an in-process run are configured identically.
    fn session_request(&self) -> SessionRequest {
        SessionRequest {
            window: self.window,
            budget_secs: self.budget.as_secs(),
            timeout_ms: self.timeout_ms,
            witnesses: self.witnesses,
            lenient: self.lenient,
            retry_split: self.retry_split,
            no_slice: self.no_slice,
            no_tiers: self.no_tiers,
            no_incremental: self.no_incremental,
            portfolio: self.portfolio,
            faults: self.faults.clone(),
            window_mode: self.window_mode,
            spill_budget: self
                .spill_budget
                .unwrap_or(SessionRequest::default().spill_budget),
            want_metrics: self.metrics.is_some(),
            kind: self.kind,
        }
    }
}

/// The `--trace-log` phase logger: human-readable progress lines on stderr,
/// stamped with time elapsed since startup. Inert unless enabled, so the
/// default output is unchanged.
struct PhaseLog {
    enabled: bool,
    start: Instant,
}

impl PhaseLog {
    fn new(enabled: bool) -> Self {
        PhaseLog {
            enabled,
            start: Instant::now(),
        }
    }

    fn log(&self, msg: &str) {
        if self.enabled {
            eprintln!("[rvpredict +{:.1?}] {msg}", self.start.elapsed());
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        detector: "rv".into(),
        kind: driver::Kind::Race,
        window: 10_000,
        budget: Duration::from_secs(60),
        timeout_ms: None,
        jobs: None,
        window_mode: WindowMode::default(),
        spill_budget: None,
        connect: None,
        stream: false,
        witnesses: false,
        lenient: false,
        retry_split: false,
        no_slice: false,
        no_tiers: false,
        no_incremental: false,
        portfolio: false,
        faults: Vec::new(),
        metrics: None,
        trace_log: false,
        demo: false,
        path: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--detector" => {
                opts.detector = args.get(i + 1).ok_or("--detector needs a value")?.clone();
                i += 2;
            }
            "--kind" => {
                let name = args.get(i + 1).ok_or("--kind needs a value")?;
                opts.kind = driver::parse_kind(name)?;
                i += 2;
            }
            "--window" => {
                opts.window = args
                    .get(i + 1)
                    .ok_or("--window needs a value")?
                    .parse()
                    .map_err(|e| format!("--window: {e}"))?;
                i += 2;
            }
            "--budget" => {
                let secs: u64 = args
                    .get(i + 1)
                    .ok_or("--budget needs a value")?
                    .parse()
                    .map_err(|e| format!("--budget: {e}"))?;
                opts.budget = Duration::from_secs(secs);
                i += 2;
            }
            "--timeout-ms" => {
                let ms: u64 = args
                    .get(i + 1)
                    .ok_or("--timeout-ms needs a value")?
                    .parse()
                    .map_err(|e| format!("--timeout-ms: {e}"))?;
                opts.timeout_ms = Some(ms);
                i += 2;
            }
            "--connect" => {
                opts.connect = Some(
                    args.get(i + 1)
                        .ok_or("--connect needs a socket path")?
                        .clone(),
                );
                i += 2;
            }
            "--jobs" => {
                let jobs: usize = args
                    .get(i + 1)
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                opts.jobs = Some(jobs);
                i += 2;
            }
            "--window-mode" => {
                let name = args.get(i + 1).ok_or("--window-mode needs a value")?;
                opts.window_mode = driver::parse_window_mode(name)?;
                i += 2;
            }
            "--spill-budget" => {
                let bytes: usize = args
                    .get(i + 1)
                    .ok_or("--spill-budget needs a value")?
                    .parse()
                    .map_err(|e| format!("--spill-budget: {e}"))?;
                opts.spill_budget = Some(bytes);
                i += 2;
            }
            "--stream" => {
                opts.stream = true;
                i += 1;
            }
            "--witnesses" => {
                opts.witnesses = true;
                i += 1;
            }
            "--lenient" => {
                opts.lenient = true;
                i += 1;
            }
            "--retry-split" => {
                opts.retry_split = true;
                i += 1;
            }
            "--no-slice" => {
                opts.no_slice = true;
                i += 1;
            }
            "--no-tiers" => {
                opts.no_tiers = true;
                i += 1;
            }
            "--no-incremental" => {
                opts.no_incremental = true;
                i += 1;
            }
            "--portfolio" => {
                opts.portfolio = true;
                i += 1;
            }
            "--inject-fault" => {
                let spec = args.get(i + 1).ok_or("--inject-fault needs W:C:KIND")?;
                opts.faults.push(driver::parse_fault_spec(spec)?);
                i += 2;
            }
            "--metrics" => {
                opts.metrics = Some(
                    args.get(i + 1)
                        .ok_or("--metrics needs an output path")?
                        .clone(),
                );
                i += 2;
            }
            "--trace-log" => {
                opts.trace_log = true;
                i += 1;
            }
            "--demo" => {
                opts.demo = true;
                i += 1;
            }
            "--help" | "-h" => return Err("help".into()),
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            path => {
                opts.path = Some(path.to_string());
                i += 1;
            }
        }
    }
    Ok(opts)
}

fn usage() {
    eprintln!(
        "usage: rvpredict [--detector rv|said|cp|hb] [--kind race|deadlock|atomicity|all] \
         [--window N] [--budget SECS] \
         [--timeout-ms MS] [--jobs N] [--window-mode fixed|cone] \
         [--spill-budget BYTES] [--connect SOCK] [--stream] [--witnesses] \
         [--lenient] [--retry-split] [--no-slice] [--no-tiers] \
         [--no-incremental] [--portfolio] \
         [--inject-fault W:C:KIND]... [--metrics OUT.json] \
         [--trace-log] (--demo | TRACE.json | -)"
    );
}

/// Opens the trace source for incremental reading; `-` is stdin.
fn open_reader(path: &str) -> Result<Box<dyn std::io::Read>, ExitCode> {
    if path == "-" {
        return Ok(Box::new(std::io::stdin()));
    }
    match std::fs::File::open(path) {
        Ok(f) => Ok(Box::new(std::io::BufReader::new(f))),
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            Err(ExitCode::from(EXIT_USAGE))
        }
    }
}

/// Strict-mode gate: reject a trace that violates the sequential-consistency
/// axioms, with the same diagnostics whether the trace was slurped or
/// streamed (in the streamed case any speculative solving is discarded).
fn reject_inconsistent(trace: &Trace) -> Result<(), ExitCode> {
    match driver::consistency_error(trace) {
        None => Ok(()),
        Some(diag) => {
            eprint!("{diag}");
            Err(ExitCode::from(EXIT_USAGE))
        }
    }
}

/// Lenient-mode repair: salvage the consistent part of a raw trace,
/// recording the `salvage.*` metrics family.
fn salvage(raw: TraceData, metrics: &mut Metrics, log: &PhaseLog) -> Trace {
    let (trace, report) = rvpredict::salvage_trace(raw);
    driver::record_salvage_metrics(&report, metrics);
    log.log(&format!("{report} in {:?}", report.elapsed));
    if !report.is_clean() {
        eprintln!("{report}");
    }
    record_trace_metrics(&trace, metrics);
    trace
}

/// Loads the trace per the options, recording ingestion metrics
/// (`trace.*`, `salvage.*`) as it goes. `Err` carries the exit code
/// (always [`EXIT_USAGE`]: bad file, bad JSON, or strict-mode
/// inconsistency).
///
/// The strict `rv --stream` combination never reaches this function —
/// [`main`] routes it to [`RaceDetector::detect_stream`], which overlaps
/// parsing with solving instead of loading the trace up front.
fn load_trace(opts: &Options, metrics: &mut Metrics, log: &PhaseLog) -> Result<Trace, ExitCode> {
    if opts.demo {
        let trace = rvsim::workloads::figures::figure1().trace;
        record_trace_metrics(&trace, metrics);
        return Ok(trace);
    }
    let Some(path) = &opts.path else {
        usage();
        return Err(ExitCode::from(EXIT_USAGE));
    };
    if opts.stream {
        // Incremental ingestion (JSON or NDJSON, auto-detected): the
        // parser never holds more than one buffered chunk beyond the
        // decoded events.
        let reader = open_reader(path)?;
        let (raw, ingest) = match rvpredict::read_trace_data(reader) {
            Ok(ok) => ok,
            Err(e) => {
                eprintln!("error: {path} is not a serialized trace: {e}");
                return Err(ExitCode::from(EXIT_USAGE));
            }
        };
        record_ingest_metrics(&ingest, metrics);
        log.log(&format!(
            "parsed {} events from {} bytes in {:?}",
            ingest.events, ingest.bytes, ingest.parse_time
        ));
        if opts.lenient {
            return Ok(salvage(raw, metrics, log));
        }
        if let Err(e) = rvpredict::validate_wait_links(&raw) {
            eprintln!("error: {path} is not a serialized trace: {e}");
            return Err(ExitCode::from(EXIT_USAGE));
        }
        let trace = Trace::from_data(raw);
        reject_inconsistent(&trace)?;
        record_trace_metrics(&trace, metrics);
        return Ok(trace);
    }
    let data = if path == "-" {
        let mut buf = String::new();
        match std::io::Read::read_to_string(&mut std::io::stdin(), &mut buf) {
            Ok(_) => buf,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return Err(ExitCode::from(EXIT_USAGE));
            }
        }
    } else {
        match std::fs::read_to_string(path) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return Err(ExitCode::from(EXIT_USAGE));
            }
        }
    };
    if opts.lenient {
        let (raw, ingest) = match rvpredict::from_json_data_with_stats(&data) {
            Ok(ok) => ok,
            Err(e) => {
                eprintln!("error: {path} is not a serialized trace: {e}");
                return Err(ExitCode::from(EXIT_USAGE));
            }
        };
        record_ingest_metrics(&ingest, metrics);
        log.log(&format!(
            "parsed {} events from {} bytes in {:?}",
            ingest.events, ingest.bytes, ingest.parse_time
        ));
        Ok(salvage(raw, metrics, log))
    } else {
        let (trace, ingest) = match rvpredict::from_json_with_stats(&data) {
            Ok(ok) => ok,
            Err(e) => {
                eprintln!("error: {path} is not a serialized trace: {e}");
                return Err(ExitCode::from(EXIT_USAGE));
            }
        };
        record_ingest_metrics(&ingest, metrics);
        log.log(&format!(
            "parsed {} events from {} bytes in {:?}",
            ingest.events, ingest.bytes, ingest.parse_time
        ));
        reject_inconsistent(&trace)?;
        record_trace_metrics(&trace, metrics);
        Ok(trace)
    }
}

/// Folds one [`rvpredict::IngestStats`] into the registry.
fn record_ingest_metrics(ingest: &rvpredict::IngestStats, metrics: &mut Metrics) {
    driver::record_ingest_metrics(ingest, metrics);
}

/// Event totals and the per-kind breakdown of the (possibly salvaged)
/// trace detection will run on.
fn record_trace_metrics(trace: &Trace, metrics: &mut Metrics) {
    driver::record_trace_metrics(trace, metrics);
}

/// Writes the metrics document, mapping an IO failure to [`EXIT_USAGE`].
fn write_metrics(path: &str, metrics: &Metrics, log: &PhaseLog) -> Result<(), ExitCode> {
    if let Err(e) = std::fs::write(path, metrics.to_json()) {
        eprintln!("error: cannot write metrics to {path}: {e}");
        return Err(ExitCode::from(EXIT_USAGE));
    }
    log.log(&format!("metrics written to {path}"));
    Ok(())
}

/// Builds the maximal detector's configuration from the CLI options —
/// via the daemon request type, so local and `--connect` runs share one
/// flag-to-config mapping (`--jobs` is the only local-only knob).
fn build_rv_config(opts: &Options) -> rvpredict::DetectorConfig {
    let mut cfg = opts.session_request().detector_config();
    if let Some(jobs) = opts.jobs {
        cfg.parallelism = jobs;
    }
    cfg
}

/// Prints the maximal detector's report, folds it into the metrics
/// registry, and maps the outcome to an exit code. Shared by the
/// whole-file, pipelined and streaming drivers so their stdout is
/// byte-identical by construction.
fn report_rv(
    report: &DetectionReport,
    trace: &Trace,
    opts: &Options,
    metrics: &mut Metrics,
    log: &PhaseLog,
) -> ExitCode {
    log.log(&format!(
        "detection finished: {} race(s), {} window(s) ({} failed), \
         solver {:?} summed, wall {:?}",
        report.n_races(),
        report.stats.windows,
        report.stats.failed_windows,
        report.stats.solver_time,
        report.stats.wall_time
    ));
    print!(
        "{}",
        driver::render_rv_report(report, trace, opts.witnesses)
    );
    metrics.merge(&report.to_metrics());
    if let Some(path) = &opts.metrics {
        if let Err(code) = write_metrics(path, metrics, log) {
            return code;
        }
    }
    if let Some(note) = driver::degraded_note(report) {
        eprint!("{note}");
    }
    ExitCode::from(driver::rv_exit_code(report))
}

/// The strict `rv --stream` driver: windows are dispatched to the worker
/// pool while the trace tail is still being read, so solving overlaps
/// ingestion and peak memory is bounded by the active windows. The
/// sequential-consistency gate still applies — it just runs after the
/// (speculative) solving instead of before it.
fn run_stream_rv(opts: &Options, metrics: &mut Metrics, log: &PhaseLog) -> ExitCode {
    let path = opts.path.as_deref().unwrap_or("-");
    let cfg = build_rv_config(opts);
    log.log(&format!(
        "streaming detection starting: detector=rv window={} jobs={}",
        cfg.window_size, cfg.parallelism
    ));
    let reader = match open_reader(path) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let detection = match RaceDetector::with_config(cfg).detect_stream(reader) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {path} is not a serialized trace: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    if let Err(code) = reject_inconsistent(&detection.trace) {
        return code;
    }
    record_ingest_metrics(&detection.ingest, metrics);
    log.log(&format!(
        "parsed {} events from {} bytes in {:?} (solving overlapped)",
        detection.ingest.events, detection.ingest.bytes, detection.ingest.parse_time
    ));
    record_trace_metrics(&detection.trace, metrics);
    print!("{}", driver::trace_line(&detection.trace));
    report_rv(&detection.report, &detection.trace, opts, metrics, log)
}

/// The `--connect` client: stream the trace bytes to an `rvserved`
/// daemon session and relay its response. The daemon renders stdout and
/// stderr through the same [`driver`] functions as the in-process paths,
/// so the relayed output is byte-identical to a local run; only trace
/// *parse* errors come back structured (the daemon has no idea what the
/// local file is called) and are composed here against `path`.
fn run_client(opts: &Options, log: &PhaseLog) -> ExitCode {
    let sock = opts.connect.as_deref().unwrap();
    if opts.detector != "rv" {
        eprintln!("error: --connect supports only the rv detector");
        return ExitCode::from(EXIT_USAGE);
    }
    if opts.demo {
        eprintln!("error: --connect cannot be combined with --demo");
        return ExitCode::from(EXIT_USAGE);
    }
    let Some(path) = opts.path.as_deref() else {
        usage();
        return ExitCode::from(EXIT_USAGE);
    };
    let mut reader = match open_reader(path) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let mut stream = match UnixStream::connect(sock) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot connect to {sock}: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    log.log(&format!("connected to daemon at {sock}"));
    let header = opts.session_request().to_json();
    if let Err(e) = write_frame(&mut stream, header.as_bytes()) {
        eprintln!("error: cannot send session request to {sock}: {e}");
        return ExitCode::from(EXIT_USAGE);
    }
    // Ship the trace in bounded chunks. A send error mid-stream usually
    // means the daemon already rejected the trace and closed its read
    // side — fall through and relay whatever response it produced.
    let mut buf = vec![0u8; 64 * 1024];
    let mut sent = 0u64;
    let send_failed = loop {
        let n = match reader.read(&mut buf) {
            Ok(0) => break false,
            Ok(n) => n,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::from(EXIT_USAGE);
            }
        };
        sent += n as u64;
        if write_frame(&mut stream, &buf[..n]).is_err() {
            break true;
        }
    };
    if !send_failed {
        // Zero-length frame: end of trace.
        let _ = write_frame(&mut stream, &[]);
    }
    let _ = stream.flush();
    let _ = stream.shutdown(std::net::Shutdown::Write);
    log.log(&format!("sent {sent} trace bytes, awaiting response"));
    let frame = match read_frame(&mut stream) {
        Ok(Some(f)) => f,
        Ok(None) | Err(_) => {
            eprintln!("error: daemon at {sock} closed the connection without a response");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let resp = match std::str::from_utf8(&frame)
        .map_err(|e| e.to_string())
        .and_then(rvpredict::driver::SessionResponse::from_json)
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: daemon at {sock} sent a malformed response: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    print!("{}", resp.stdout);
    eprint!("{}", resp.stderr);
    if let Some(err) = &resp.error {
        eprintln!("error: {path} is not a serialized trace: {err}");
    }
    if let (Some(out), Some(doc)) = (&opts.metrics, &resp.metrics) {
        if let Err(e) = std::fs::write(out, doc) {
            eprintln!("error: cannot write metrics to {out}: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
        log.log(&format!("metrics written to {out}"));
    }
    ExitCode::from(resp.exit)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}");
            }
            usage();
            return ExitCode::from(EXIT_USAGE);
        }
    };

    let log = PhaseLog::new(opts.trace_log);
    let mut metrics = Metrics::new();

    // The deadlock/atomicity analyses are defined over the rv machinery
    // only; the baselines have no notion of them.
    if opts.kind != driver::Kind::Race && opts.detector != "rv" {
        eprintln!(
            "error: --kind {} requires the rv detector",
            driver::kind_name(opts.kind)
        );
        usage();
        return ExitCode::from(EXIT_USAGE);
    }

    // `--connect`: the detection runs in an rvserved daemon; this process
    // only streams the trace over and relays the byte-identical reply.
    if opts.connect.is_some() {
        return run_client(&opts, &log);
    }

    // Strict `rv --stream` never materializes the windows up front: it
    // goes through the incremental parser + pipelined worker pool.
    // (`--lenient --stream` must see the whole trace before salvage can
    // run, so it streams the parse, salvages, then pipelines the solve.)
    if opts.stream
        && opts.detector == "rv"
        && opts.kind == driver::Kind::Race
        && !opts.lenient
        && !opts.demo
    {
        if opts.path.is_none() {
            usage();
            return ExitCode::from(EXIT_USAGE);
        }
        return run_stream_rv(&opts, &mut metrics, &log);
    }

    let trace = match load_trace(&opts, &mut metrics, &log) {
        Ok(t) => t,
        Err(code) => return code,
    };
    print!("{}", driver::trace_line(&trace));

    match opts.detector.as_str() {
        "rv" => {
            let cfg = build_rv_config(&opts);
            log.log(&format!(
                "detection starting: detector=rv kind={} window={} jobs={} events={}",
                driver::kind_name(opts.kind),
                cfg.window_size,
                cfg.parallelism,
                trace.len()
            ));
            if opts.kind == driver::Kind::Race {
                let detector = RaceDetector::with_config(cfg);
                let report = if opts.stream {
                    detector.detect_pipelined(&trace)
                } else {
                    detector.detect(&trace)
                };
                return report_rv(&report, &trace, &opts, &mut metrics, &log);
            }
            let run = driver::run_kinds(opts.kind, &trace, &cfg, opts.stream);
            print!(
                "{}",
                driver::render_kind_report(&run, &trace, opts.witnesses)
            );
            driver::record_kind_metrics(&run, &mut metrics);
            if let Some(path) = &opts.metrics {
                if let Err(code) = write_metrics(path, &metrics, &log) {
                    return code;
                }
            }
            if let Some(note) = driver::kind_run_notes(&run) {
                eprint!("{note}");
            }
            ExitCode::from(driver::kind_run_exit(&run))
        }
        name @ ("said" | "cp" | "hb") => {
            let tool: Box<dyn RaceDetectorTool> = match name {
                "said" => {
                    let mut d = SaidDetector::default();
                    d.config.window_size = opts.window;
                    d.config.solver_timeout = opts.budget;
                    Box::new(d)
                }
                "cp" => Box::new(CpDetector {
                    window_size: opts.window,
                    ..Default::default()
                }),
                _ => Box::new(HbDetector {
                    window_size: opts.window,
                    ..Default::default()
                }),
            };
            log.log(&format!(
                "detection starting: detector={} window={} events={}",
                name,
                opts.window,
                trace.len()
            ));
            let r = tool.detect_races(&trace);
            log.log(&format!(
                "detection finished: {} race(s) in {:?}",
                r.n_races(),
                r.time
            ));
            println!(
                "{}: {} race(s), {} pairs checked, {:?}",
                tool.name(),
                r.n_races(),
                r.pairs_checked,
                r.time
            );
            for sig in &r.signatures {
                println!("  {}", sig.display(&trace));
            }
            metrics.inc("detector.races", r.n_races() as u64);
            metrics.inc("detector.pairs_considered", r.pairs_checked as u64);
            metrics.record_time("detector.wall_time", r.time);
            if let Some(path) = &opts.metrics {
                if let Err(code) = write_metrics(path, &metrics, &log) {
                    return code;
                }
            }
            if r.n_races() > 0 {
                ExitCode::from(EXIT_RACES)
            } else {
                ExitCode::SUCCESS
            }
        }
        other => {
            eprintln!("error: unknown detector {other}");
            ExitCode::from(EXIT_USAGE)
        }
    }
}
