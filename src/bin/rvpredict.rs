//! The `rvpredict` command-line tool: read a serialized trace, run the
//! maximal race detector (or a baseline), and print the report.
//!
//! ```sh
//! rvpredict [OPTIONS] TRACE.json
//!
//! OPTIONS:
//!   --detector rv|said|cp|hb   technique to run (default rv)
//!   --window N                 window size in events (default 10000)
//!   --budget SECS              per-COP solver budget (default 60, as in the paper)
//!   --jobs N                   solve windows on N worker threads (default: all cores)
//!   --stream                   ingest the trace incrementally (JSON or NDJSON) and
//!                              start solving windows while the tail is still being
//!                              read; output is byte-identical to the whole-file run
//!   --witnesses                print full witness schedules
//!   --lenient                  salvage a damaged trace: drop events violating the
//!                              consistency axioms (with per-category diagnostics)
//!                              instead of rejecting the file
//!   --retry-split              re-solve per-COP timeouts once in half-size windows
//!   --no-slice                 disable relevance slicing (encode each COP over the
//!                              whole window instead of its cone of influence);
//!                              verdicts and witnesses are identical either way —
//!                              this exists for A/B checking and ablation
//!   --no-tiers                 disable the tiered pre-solver cascade (send every
//!                              COP straight to the SMT encoding instead of letting
//!                              the linear-time screens confirm/refute it first);
//!                              verdicts and witnesses are identical either way —
//!                              this exists for A/B checking and ablation
//!   --inject-fault W:C:KIND    (testing) inject a fault at window W, COP C;
//!                              KIND is panic, timeout or encode-error; repeatable
//!   --metrics OUT.json         write the run's metrics registry (versioned JSON:
//!                              counters, histograms, timings, gauges) to OUT.json
//!   --trace-log                log phase progress to stderr, with timestamps
//!   --demo                     ignore TRACE and run the paper's Figure 1 instead
//! ```
//!
//! `TRACE.json` may be `-` to read the trace from standard input (with or
//! without `--stream`). With `--stream` the trace may also be NDJSON (one
//! metadata header object, then one event object per line); the format is
//! auto-detected.
//!
//! The `--metrics` document separates count-type metrics (counters,
//! histograms — byte-identical at every `--jobs` level and identical
//! between `--stream` and whole-file runs) from wall-clock timings and
//! gauges (`timings_us`, `gauges` — machine- and run-dependent); see
//! DESIGN.md's "Observability" section for the schema and the
//! determinism contract.
//!
//! # Exit codes
//!
//! * `0` — detection completed, no races found, nothing left undecided;
//! * `1` — at least one race was found (and witness-validated);
//! * `2` — usage error, unreadable/unparsable trace file, or (in strict
//!   mode) a trace that violates the sequential-consistency axioms;
//! * `3` — detection completed and found no races, but some verdicts are
//!   missing (undecided COPs or failed windows): "no races" is *not*
//!   proven for the whole trace.
//!
//! Races dominate degradation: a run that both finds races and fails some
//! windows exits `1` (the found races are sound regardless).
//!
//! The trace format is the JSON serialization of [`rvpredict::Trace`]
//! (see [`rvpredict::to_json`]); any instrumentation front-end that can
//! emit the §2 event alphabet can produce it.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rvpredict::{
    CpDetector, DetectionReport, DetectorConfig, Fault, FaultPlan, HbDetector, Metrics,
    RaceDetector, RaceDetectorTool, SaidDetector, Trace, TraceData,
};

struct Options {
    detector: String,
    window: usize,
    budget: Duration,
    jobs: Option<usize>,
    stream: bool,
    witnesses: bool,
    lenient: bool,
    retry_split: bool,
    no_slice: bool,
    no_tiers: bool,
    faults: Vec<(usize, usize, Fault)>,
    metrics: Option<String>,
    trace_log: bool,
    demo: bool,
    path: Option<String>,
}

/// The `--trace-log` phase logger: human-readable progress lines on stderr,
/// stamped with time elapsed since startup. Inert unless enabled, so the
/// default output is unchanged.
struct PhaseLog {
    enabled: bool,
    start: Instant,
}

impl PhaseLog {
    fn new(enabled: bool) -> Self {
        PhaseLog {
            enabled,
            start: Instant::now(),
        }
    }

    fn log(&self, msg: &str) {
        if self.enabled {
            eprintln!("[rvpredict +{:.1?}] {msg}", self.start.elapsed());
        }
    }
}

/// Parses `W:C:KIND` into a fault coordinate.
fn parse_fault(spec: &str) -> Result<(usize, usize, Fault), String> {
    let mut parts = spec.splitn(3, ':');
    let window = parts
        .next()
        .and_then(|s| s.parse::<usize>().ok())
        .ok_or_else(|| format!("--inject-fault {spec}: bad window index"))?;
    let cop = parts
        .next()
        .and_then(|s| s.parse::<usize>().ok())
        .ok_or_else(|| format!("--inject-fault {spec}: bad COP index"))?;
    let fault = match parts.next() {
        Some("panic") => Fault::Panic,
        Some("timeout") => Fault::Timeout,
        Some("encode-error") => Fault::EncodeError,
        _ => {
            return Err(format!(
                "--inject-fault {spec}: kind must be panic, timeout or encode-error"
            ))
        }
    };
    Ok((window, cop, fault))
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        detector: "rv".into(),
        window: 10_000,
        budget: Duration::from_secs(60),
        jobs: None,
        stream: false,
        witnesses: false,
        lenient: false,
        retry_split: false,
        no_slice: false,
        no_tiers: false,
        faults: Vec::new(),
        metrics: None,
        trace_log: false,
        demo: false,
        path: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--detector" => {
                opts.detector = args.get(i + 1).ok_or("--detector needs a value")?.clone();
                i += 2;
            }
            "--window" => {
                opts.window = args
                    .get(i + 1)
                    .ok_or("--window needs a value")?
                    .parse()
                    .map_err(|e| format!("--window: {e}"))?;
                i += 2;
            }
            "--budget" => {
                let secs: u64 = args
                    .get(i + 1)
                    .ok_or("--budget needs a value")?
                    .parse()
                    .map_err(|e| format!("--budget: {e}"))?;
                opts.budget = Duration::from_secs(secs);
                i += 2;
            }
            "--jobs" => {
                let jobs: usize = args
                    .get(i + 1)
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                opts.jobs = Some(jobs);
                i += 2;
            }
            "--stream" => {
                opts.stream = true;
                i += 1;
            }
            "--witnesses" => {
                opts.witnesses = true;
                i += 1;
            }
            "--lenient" => {
                opts.lenient = true;
                i += 1;
            }
            "--retry-split" => {
                opts.retry_split = true;
                i += 1;
            }
            "--no-slice" => {
                opts.no_slice = true;
                i += 1;
            }
            "--no-tiers" => {
                opts.no_tiers = true;
                i += 1;
            }
            "--inject-fault" => {
                let spec = args.get(i + 1).ok_or("--inject-fault needs W:C:KIND")?;
                opts.faults.push(parse_fault(spec)?);
                i += 2;
            }
            "--metrics" => {
                opts.metrics = Some(
                    args.get(i + 1)
                        .ok_or("--metrics needs an output path")?
                        .clone(),
                );
                i += 2;
            }
            "--trace-log" => {
                opts.trace_log = true;
                i += 1;
            }
            "--demo" => {
                opts.demo = true;
                i += 1;
            }
            "--help" | "-h" => return Err("help".into()),
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            path => {
                opts.path = Some(path.to_string());
                i += 1;
            }
        }
    }
    Ok(opts)
}

fn usage() {
    eprintln!(
        "usage: rvpredict [--detector rv|said|cp|hb] [--window N] [--budget SECS] \
         [--jobs N] [--stream] [--witnesses] [--lenient] [--retry-split] \
         [--no-slice] [--no-tiers] [--inject-fault W:C:KIND]... [--metrics OUT.json] \
         [--trace-log] (--demo | TRACE.json | -)"
    );
}

const EXIT_USAGE: u8 = 2;
const EXIT_RACES: u8 = 1;
const EXIT_DEGRADED: u8 = 3;

/// Opens the trace source for incremental reading; `-` is stdin.
fn open_reader(path: &str) -> Result<Box<dyn std::io::Read>, ExitCode> {
    if path == "-" {
        return Ok(Box::new(std::io::stdin()));
    }
    match std::fs::File::open(path) {
        Ok(f) => Ok(Box::new(std::io::BufReader::new(f))),
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            Err(ExitCode::from(EXIT_USAGE))
        }
    }
}

/// Strict-mode gate: reject a trace that violates the sequential-consistency
/// axioms, with the same diagnostics whether the trace was slurped or
/// streamed (in the streamed case any speculative solving is discarded).
fn reject_inconsistent(trace: &Trace) -> Result<(), ExitCode> {
    let violations = rvpredict::check_consistency(trace);
    if violations.is_empty() {
        return Ok(());
    }
    eprintln!("error: trace is not sequentially consistent:");
    for v in violations.iter().take(5) {
        eprintln!("  {v}");
    }
    if violations.len() > 5 {
        eprintln!("  ... and {} more", violations.len() - 5);
    }
    eprintln!("  (rerun with --lenient to salvage the consistent part)");
    Err(ExitCode::from(EXIT_USAGE))
}

/// Lenient-mode repair: salvage the consistent part of a raw trace,
/// recording the `salvage.*` metrics family.
fn salvage(raw: TraceData, metrics: &mut Metrics, log: &PhaseLog) -> Trace {
    let (trace, report) = rvpredict::salvage_trace(raw);
    metrics.inc("salvage.total", report.total as u64);
    metrics.inc("salvage.kept", report.kept as u64);
    metrics.inc(
        "salvage.dangling_wait_links",
        report.dangling_wait_links as u64,
    );
    for (category, &n) in &report.dropped {
        metrics.inc(&format!("salvage.dropped.{category}"), n as u64);
    }
    metrics.record_time("trace.salvage_time", report.elapsed);
    log.log(&format!("{report} in {:?}", report.elapsed));
    if !report.is_clean() {
        eprintln!("{report}");
    }
    record_trace_metrics(&trace, metrics);
    trace
}

/// Loads the trace per the options, recording ingestion metrics
/// (`trace.*`, `salvage.*`) as it goes. `Err` carries the exit code
/// (always [`EXIT_USAGE`]: bad file, bad JSON, or strict-mode
/// inconsistency).
///
/// The strict `rv --stream` combination never reaches this function —
/// [`main`] routes it to [`RaceDetector::detect_stream`], which overlaps
/// parsing with solving instead of loading the trace up front.
fn load_trace(opts: &Options, metrics: &mut Metrics, log: &PhaseLog) -> Result<Trace, ExitCode> {
    if opts.demo {
        let trace = rvsim::workloads::figures::figure1().trace;
        record_trace_metrics(&trace, metrics);
        return Ok(trace);
    }
    let Some(path) = &opts.path else {
        usage();
        return Err(ExitCode::from(EXIT_USAGE));
    };
    if opts.stream {
        // Incremental ingestion (JSON or NDJSON, auto-detected): the
        // parser never holds more than one buffered chunk beyond the
        // decoded events.
        let reader = open_reader(path)?;
        let (raw, ingest) = match rvpredict::read_trace_data(reader) {
            Ok(ok) => ok,
            Err(e) => {
                eprintln!("error: {path} is not a serialized trace: {e}");
                return Err(ExitCode::from(EXIT_USAGE));
            }
        };
        record_ingest_metrics(&ingest, metrics);
        log.log(&format!(
            "parsed {} events from {} bytes in {:?}",
            ingest.events, ingest.bytes, ingest.parse_time
        ));
        if opts.lenient {
            return Ok(salvage(raw, metrics, log));
        }
        if let Err(e) = rvpredict::validate_wait_links(&raw) {
            eprintln!("error: {path} is not a serialized trace: {e}");
            return Err(ExitCode::from(EXIT_USAGE));
        }
        let trace = Trace::from_data(raw);
        reject_inconsistent(&trace)?;
        record_trace_metrics(&trace, metrics);
        return Ok(trace);
    }
    let data = if path == "-" {
        let mut buf = String::new();
        match std::io::Read::read_to_string(&mut std::io::stdin(), &mut buf) {
            Ok(_) => buf,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return Err(ExitCode::from(EXIT_USAGE));
            }
        }
    } else {
        match std::fs::read_to_string(path) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return Err(ExitCode::from(EXIT_USAGE));
            }
        }
    };
    if opts.lenient {
        let (raw, ingest) = match rvpredict::from_json_data_with_stats(&data) {
            Ok(ok) => ok,
            Err(e) => {
                eprintln!("error: {path} is not a serialized trace: {e}");
                return Err(ExitCode::from(EXIT_USAGE));
            }
        };
        record_ingest_metrics(&ingest, metrics);
        log.log(&format!(
            "parsed {} events from {} bytes in {:?}",
            ingest.events, ingest.bytes, ingest.parse_time
        ));
        Ok(salvage(raw, metrics, log))
    } else {
        let (trace, ingest) = match rvpredict::from_json_with_stats(&data) {
            Ok(ok) => ok,
            Err(e) => {
                eprintln!("error: {path} is not a serialized trace: {e}");
                return Err(ExitCode::from(EXIT_USAGE));
            }
        };
        record_ingest_metrics(&ingest, metrics);
        log.log(&format!(
            "parsed {} events from {} bytes in {:?}",
            ingest.events, ingest.bytes, ingest.parse_time
        ));
        reject_inconsistent(&trace)?;
        record_trace_metrics(&trace, metrics);
        Ok(trace)
    }
}

/// Folds one [`rvpredict::IngestStats`] into the registry.
fn record_ingest_metrics(ingest: &rvpredict::IngestStats, metrics: &mut Metrics) {
    metrics.inc("trace.ingest.bytes", ingest.bytes as u64);
    metrics.record_time("trace.ingest.parse_time", ingest.parse_time);
}

/// Event totals and the per-kind breakdown of the (possibly salvaged)
/// trace detection will run on.
fn record_trace_metrics(trace: &Trace, metrics: &mut Metrics) {
    metrics.inc("trace.events", trace.len() as u64);
    for (kind, n) in trace.kind_counts() {
        metrics.inc(&format!("trace.kind.{kind}"), n as u64);
    }
}

/// Writes the metrics document, mapping an IO failure to [`EXIT_USAGE`].
fn write_metrics(path: &str, metrics: &Metrics, log: &PhaseLog) -> Result<(), ExitCode> {
    if let Err(e) = std::fs::write(path, metrics.to_json()) {
        eprintln!("error: cannot write metrics to {path}: {e}");
        return Err(ExitCode::from(EXIT_USAGE));
    }
    log.log(&format!("metrics written to {path}"));
    Ok(())
}

/// Builds the maximal detector's configuration from the CLI options.
fn build_rv_config(opts: &Options) -> DetectorConfig {
    let mut cfg = DetectorConfig {
        window_size: opts.window,
        solver_timeout: opts.budget,
        retry_split: opts.retry_split,
        slice: !opts.no_slice,
        tiers: !opts.no_tiers,
        ..Default::default()
    };
    if let Some(jobs) = opts.jobs {
        cfg.parallelism = jobs;
    }
    if !opts.faults.is_empty() {
        let mut plan = FaultPlan::new();
        for &(w, c, fault) in &opts.faults {
            plan = plan.inject(w, c, fault);
        }
        cfg.fault_plan = Some(Arc::new(plan));
    }
    cfg
}

/// Prints the maximal detector's report, folds it into the metrics
/// registry, and maps the outcome to an exit code. Shared by the
/// whole-file, pipelined and streaming drivers so their stdout is
/// byte-identical by construction.
fn report_rv(
    report: &DetectionReport,
    trace: &Trace,
    opts: &Options,
    metrics: &mut Metrics,
    log: &PhaseLog,
) -> ExitCode {
    log.log(&format!(
        "detection finished: {} race(s), {} window(s) ({} failed), \
         solver {:?} summed, wall {:?}",
        report.n_races(),
        report.stats.windows,
        report.stats.failed_windows,
        report.stats.solver_time,
        report.stats.wall_time
    ));
    println!("{report}");
    for race in &report.races {
        println!("  {}", race.display(trace));
        if opts.witnesses {
            println!("    witness: {}", race.schedule);
        }
    }
    metrics.merge(&report.to_metrics());
    if let Some(path) = &opts.metrics {
        if let Err(code) = write_metrics(path, metrics, log) {
            return code;
        }
    }
    if report.n_races() > 0 {
        ExitCode::from(EXIT_RACES)
    } else if report.is_degraded() {
        eprintln!(
            "note: no races found, but {} COP(s) are undecided and {} window(s) \
             failed — race freedom is not established for those",
            report.stats.undecided, report.stats.failed_windows
        );
        ExitCode::from(EXIT_DEGRADED)
    } else {
        ExitCode::SUCCESS
    }
}

/// The strict `rv --stream` driver: windows are dispatched to the worker
/// pool while the trace tail is still being read, so solving overlaps
/// ingestion and peak memory is bounded by the active windows. The
/// sequential-consistency gate still applies — it just runs after the
/// (speculative) solving instead of before it.
fn run_stream_rv(opts: &Options, metrics: &mut Metrics, log: &PhaseLog) -> ExitCode {
    let path = opts.path.as_deref().unwrap_or("-");
    let cfg = build_rv_config(opts);
    log.log(&format!(
        "streaming detection starting: detector=rv window={} jobs={}",
        cfg.window_size, cfg.parallelism
    ));
    let reader = match open_reader(path) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let detection = match RaceDetector::with_config(cfg).detect_stream(reader) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {path} is not a serialized trace: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    if let Err(code) = reject_inconsistent(&detection.trace) {
        return code;
    }
    record_ingest_metrics(&detection.ingest, metrics);
    log.log(&format!(
        "parsed {} events from {} bytes in {:?} (solving overlapped)",
        detection.ingest.events, detection.ingest.bytes, detection.ingest.parse_time
    ));
    record_trace_metrics(&detection.trace, metrics);
    println!("trace: {}", detection.trace.stats());
    report_rv(&detection.report, &detection.trace, opts, metrics, log)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}");
            }
            usage();
            return ExitCode::from(EXIT_USAGE);
        }
    };

    let log = PhaseLog::new(opts.trace_log);
    let mut metrics = Metrics::new();

    // Strict `rv --stream` never materializes the windows up front: it
    // goes through the incremental parser + pipelined worker pool.
    // (`--lenient --stream` must see the whole trace before salvage can
    // run, so it streams the parse, salvages, then pipelines the solve.)
    if opts.stream && opts.detector == "rv" && !opts.lenient && !opts.demo {
        if opts.path.is_none() {
            usage();
            return ExitCode::from(EXIT_USAGE);
        }
        return run_stream_rv(&opts, &mut metrics, &log);
    }

    let trace = match load_trace(&opts, &mut metrics, &log) {
        Ok(t) => t,
        Err(code) => return code,
    };
    println!("trace: {}", trace.stats());

    match opts.detector.as_str() {
        "rv" => {
            let cfg = build_rv_config(&opts);
            log.log(&format!(
                "detection starting: detector=rv window={} jobs={} events={}",
                cfg.window_size,
                cfg.parallelism,
                trace.len()
            ));
            let detector = RaceDetector::with_config(cfg);
            let report = if opts.stream {
                detector.detect_pipelined(&trace)
            } else {
                detector.detect(&trace)
            };
            report_rv(&report, &trace, &opts, &mut metrics, &log)
        }
        name @ ("said" | "cp" | "hb") => {
            let tool: Box<dyn RaceDetectorTool> = match name {
                "said" => {
                    let mut d = SaidDetector::default();
                    d.config.window_size = opts.window;
                    d.config.solver_timeout = opts.budget;
                    Box::new(d)
                }
                "cp" => Box::new(CpDetector {
                    window_size: opts.window,
                    ..Default::default()
                }),
                _ => Box::new(HbDetector {
                    window_size: opts.window,
                    ..Default::default()
                }),
            };
            log.log(&format!(
                "detection starting: detector={} window={} events={}",
                name,
                opts.window,
                trace.len()
            ));
            let r = tool.detect_races(&trace);
            log.log(&format!(
                "detection finished: {} race(s) in {:?}",
                r.n_races(),
                r.time
            ));
            println!(
                "{}: {} race(s), {} pairs checked, {:?}",
                tool.name(),
                r.n_races(),
                r.pairs_checked,
                r.time
            );
            for sig in &r.signatures {
                println!("  {}", sig.display(&trace));
            }
            metrics.inc("detector.races", r.n_races() as u64);
            metrics.inc("detector.pairs_considered", r.pairs_checked as u64);
            metrics.record_time("detector.wall_time", r.time);
            if let Some(path) = &opts.metrics {
                if let Err(code) = write_metrics(path, &metrics, &log) {
                    return code;
                }
            }
            if r.n_races() > 0 {
                ExitCode::from(EXIT_RACES)
            } else {
                ExitCode::SUCCESS
            }
        }
        other => {
            eprintln!("error: unknown detector {other}");
            ExitCode::from(EXIT_USAGE)
        }
    }
}
