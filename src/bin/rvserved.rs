//! The `rvserved` detection daemon: many concurrent trace streams, one
//! shared solver pool, per-session fault isolation.
//!
//! ```sh
//! rvserved --socket PATH [OPTIONS]
//!
//! OPTIONS:
//!   --socket PATH           unix socket to listen on (required; a stale
//!                           socket file at PATH is replaced)
//!   --jobs N                solver worker threads shared by all sessions
//!                           (default: all cores)
//!   --once N                accept exactly N connections, serve them to
//!                           completion, then exit 0 (for tests and CI;
//!                           without it the daemon serves until killed)
//!   --resident-windows N    per-session backpressure cap: at most N windows
//!                           submitted but not yet merged per stream
//!                           (default 32); past it, that stream's ingest
//!                           blocks — co-tenants are unaffected
//!   --shed-pending N        pool saturation threshold: once N windows are
//!                           queued pool-wide, newly submitted windows are
//!                           shed — every COP degrades to undecided
//!                           (timeout), exactly the `--timeout-ms` verdict
//!                           path (default: jobs * 64)
//!   --idle-ms MS            per-connection idle timeout: a session that
//!                           sends nothing for MS milliseconds is torn down
//!                           (default 30000; 0 disables)
//! ```
//!
//! Clients are `rvpredict --connect PATH TRACE.json` invocations; the wire
//! protocol is documented in [`rvpredict::driver`]. Each connection gets a
//! [`rvpredict::DetectionSession`]: its own parser, window cursor,
//! signature state and metrics, multiplexed onto the shared pool with
//! round-robin fairness. The failure domain is the session — a panicking
//! handler or a dead client tears down one session (logged as a
//! deterministic `SessionError` line on stderr) and nothing else.
//!
//! # Exit codes
//!
//! * `0` — `--once N` sessions were accepted and served (individual session
//!   failures are *not* process failures: they are isolated by design and
//!   reported per-session);
//! * `2` — usage error or the socket could not be bound.
//!
//! Without `--once` the daemon runs until killed; in-flight sessions die
//! with the process (clients see a closed connection, exit 2).

use std::io::Write as _;
use std::os::unix::net::{UnixListener, UnixStream};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use rvpredict::driver::{self, SessionRequest, SessionResponse, EXIT_USAGE};
use rvpredict::{read_frame, write_frame, Metrics, SessionError, SessionManager, SessionOutcome};

struct ServeOptions {
    socket: String,
    jobs: Option<usize>,
    once: Option<u64>,
    resident_windows: usize,
    shed_pending: Option<usize>,
    idle_ms: u64,
}

fn parse_args() -> Result<ServeOptions, String> {
    let mut opts = ServeOptions {
        socket: String::new(),
        jobs: None,
        once: None,
        resident_windows: 32,
        shed_pending: None,
        idle_ms: 30_000,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--socket" => {
                opts.socket = args.get(i + 1).ok_or("--socket needs a path")?.clone();
                i += 2;
            }
            "--jobs" => {
                let jobs: usize = args
                    .get(i + 1)
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                opts.jobs = Some(jobs);
                i += 2;
            }
            "--once" => {
                opts.once = Some(
                    args.get(i + 1)
                        .ok_or("--once needs a connection count")?
                        .parse()
                        .map_err(|e| format!("--once: {e}"))?,
                );
                i += 2;
            }
            "--resident-windows" => {
                let n: usize = args
                    .get(i + 1)
                    .ok_or("--resident-windows needs a value")?
                    .parse()
                    .map_err(|e| format!("--resident-windows: {e}"))?;
                if n == 0 {
                    return Err("--resident-windows must be at least 1".into());
                }
                opts.resident_windows = n;
                i += 2;
            }
            "--shed-pending" => {
                opts.shed_pending = Some(
                    args.get(i + 1)
                        .ok_or("--shed-pending needs a value")?
                        .parse()
                        .map_err(|e| format!("--shed-pending: {e}"))?,
                );
                i += 2;
            }
            "--idle-ms" => {
                opts.idle_ms = args
                    .get(i + 1)
                    .ok_or("--idle-ms needs a value")?
                    .parse()
                    .map_err(|e| format!("--idle-ms: {e}"))?;
                i += 2;
            }
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    if opts.socket.is_empty() {
        return Err("--socket is required".into());
    }
    Ok(opts)
}

fn usage() {
    eprintln!(
        "usage: rvserved --socket PATH [--jobs N] [--once N] [--resident-windows N] \
         [--shed-pending N] [--idle-ms MS]"
    );
}

/// Sends the one response frame; a send failure means the client is gone,
/// which the caller cannot do anything about.
fn respond(stream: &mut UnixStream, resp: &SessionResponse) {
    let _ = write_frame(stream, resp.to_json().as_bytes());
    let _ = stream.flush();
}

/// A response that is pure stderr + exit code (pre-session failures:
/// malformed request, idle before the header).
fn reject(stream: &mut UnixStream, message: &str) {
    respond(
        stream,
        &SessionResponse {
            exit: EXIT_USAGE,
            stderr: format!("error: {message}\n"),
            ..SessionResponse::default()
        },
    );
}

/// Is this read error the configured idle timeout firing?
fn is_idle(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Renders a finished session exactly as the standalone CLI would have:
/// same stdout, same stderr, same exit code, same count-type metrics — all
/// through the shared [`driver`] functions, never a private copy.
fn compose_response(req: &SessionRequest, outcome: &SessionOutcome) -> SessionResponse {
    let mut metrics = Metrics::new();
    driver::record_ingest_metrics(&outcome.ingest, &mut metrics);
    // The session's own registry (`session.*` residency/shedding state)
    // rides along in the gauges section, which is exempt from the
    // count-type identity contract — counters and histograms below stay
    // byte-identical to the solo CLI's document.
    metrics.merge(&outcome.metrics);
    let mut stderr = String::new();
    if let Some(salvage) = &outcome.salvage {
        driver::record_salvage_metrics(salvage, &mut metrics);
        if !salvage.is_clean() {
            stderr.push_str(&format!("{salvage}\n"));
        }
    } else if let Some(diag) = driver::consistency_error(&outcome.trace) {
        // The strict-mode gate, after the (speculative) solving — the same
        // point the streaming CLI applies it: nothing printed to stdout.
        return SessionResponse {
            exit: EXIT_USAGE,
            stderr: diag,
            ..SessionResponse::default()
        };
    }
    driver::record_trace_metrics(&outcome.trace, &mut metrics);
    let mut stdout = driver::trace_line(&outcome.trace);
    if req.kind == driver::Kind::Race {
        stdout.push_str(&driver::render_rv_report(
            &outcome.report,
            &outcome.trace,
            req.witnesses,
        ));
        metrics.merge(&outcome.report.to_metrics());
        if let Some(note) = driver::degraded_note(&outcome.report) {
            stderr.push_str(&note);
        }
        return SessionResponse {
            exit: driver::rv_exit_code(&outcome.report),
            stdout,
            stderr,
            metrics: req.want_metrics.then(|| metrics.to_json()),
            error: None,
        };
    }
    // Non-race kinds: the deadlock/atomicity passes run over the fully
    // reconstructed trace; the race section (under `all`) reuses the
    // session's already-solved report — identical to a fresh run by the
    // stream-equivalence contract.
    let cfg = req.detector_config();
    let mut run = driver::KindRun::default();
    if req.kind == driver::Kind::All {
        run.race = Some(outcome.report.clone());
    }
    if matches!(req.kind, driver::Kind::Deadlock | driver::Kind::All) {
        run.deadlock =
            driver::run_kinds(driver::Kind::Deadlock, &outcome.trace, &cfg, false).deadlock;
    }
    if matches!(req.kind, driver::Kind::Atomicity | driver::Kind::All) {
        run.atomicity =
            driver::run_kinds(driver::Kind::Atomicity, &outcome.trace, &cfg, false).atomicity;
    }
    stdout.push_str(&driver::render_kind_report(
        &run,
        &outcome.trace,
        req.witnesses,
    ));
    driver::record_kind_metrics(&run, &mut metrics);
    if let Some(note) = driver::kind_run_notes(&run) {
        stderr.push_str(&note);
    }
    SessionResponse {
        exit: driver::kind_run_exit(&run),
        stdout,
        stderr,
        metrics: req.want_metrics.then(|| metrics.to_json()),
        error: None,
    }
}

/// One connection, one session: request frame, trace frames, empty frame,
/// response frame. `Err` is a torn-down session (disconnect, idle, read
/// failure) — the deterministic record the caller logs.
fn serve_session(
    mut stream: UnixStream,
    manager: &SessionManager,
    opts: &ServeOptions,
) -> Result<(), SessionError> {
    if opts.idle_ms > 0 {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(opts.idle_ms)));
    }
    let header = match read_frame(&mut stream) {
        Ok(Some(f)) => f,
        // Connected and went away without a word: not a session yet.
        Ok(None) => return Ok(()),
        Err(e) if is_idle(&e) => {
            reject(&mut stream, "session idle timeout before request");
            return Ok(());
        }
        Err(_) => return Ok(()),
    };
    let req = match std::str::from_utf8(&header)
        .map_err(|e| e.to_string())
        .and_then(|s| SessionRequest::from_json(s))
    {
        Ok(r) => r,
        Err(e) => {
            reject(&mut stream, &e);
            return Ok(());
        }
    };
    let mut session = manager.open_session(req.session_config(opts.resident_windows));
    loop {
        match read_frame(&mut stream) {
            // The zero-length frame ends the trace.
            Ok(Some(f)) if f.is_empty() => break,
            Ok(Some(f)) => {
                if let Err(e) = session.feed(&f) {
                    // Fatal to the session, exactly like the CLI parsers.
                    // The client composes the file-name line locally.
                    respond(
                        &mut stream,
                        &SessionResponse {
                            exit: EXIT_USAGE,
                            error: Some(e.to_string()),
                            ..SessionResponse::default()
                        },
                    );
                    return Ok(());
                }
            }
            Ok(None) => return Err(session.abort("client disconnected mid-stream")),
            Err(e) if is_idle(&e) => {
                reject(&mut stream, "session idle timeout");
                return Err(session.abort("idle timeout"));
            }
            Err(e) => return Err(session.abort(format!("read error: {e}"))),
        }
    }
    match session.finish() {
        Ok(outcome) => respond(&mut stream, &compose_response(&req, &outcome)),
        // Tail parse / wait-link validation failures, same text as the CLI.
        Err(e) => respond(
            &mut stream,
            &SessionResponse {
                exit: EXIT_USAGE,
                error: Some(e.to_string()),
                ..SessionResponse::default()
            },
        ),
    }
    Ok(())
}

/// The per-connection thread body: panic-isolated, teardown-logged. A
/// session failing — even by panicking — never takes the daemon or a
/// neighbor session with it.
fn handle_connection(stream: UnixStream, manager: &SessionManager, opts: &ServeOptions) {
    let run = std::panic::AssertUnwindSafe(|| serve_session(stream, manager, opts));
    match std::panic::catch_unwind(run) {
        Ok(Ok(())) => {}
        Ok(Err(teardown)) => eprintln!("rvserved: {teardown}"),
        Err(_) => eprintln!("rvserved: session handler panicked; daemon unaffected"),
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}");
            }
            usage();
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let jobs = opts.jobs.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    // Replace a stale socket file from a previous run; refuse nothing else.
    if std::fs::metadata(&opts.socket).is_ok() {
        if let Err(e) = std::fs::remove_file(&opts.socket) {
            eprintln!("error: cannot replace stale socket {}: {e}", opts.socket);
            return ExitCode::from(EXIT_USAGE);
        }
    }
    let listener = match UnixListener::bind(&opts.socket) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", opts.socket);
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let manager = Arc::new(match opts.shed_pending {
        Some(threshold) => SessionManager::with_shed_threshold(jobs, threshold),
        None => SessionManager::new(jobs),
    });
    let opts = Arc::new(opts);
    eprintln!(
        "rvserved: listening on {} ({} solver workers)",
        opts.socket,
        manager.worker_count()
    );
    let mut handles = Vec::new();
    let mut accepted = 0u64;
    while opts.once.map_or(true, |n| accepted < n) {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) => {
                eprintln!("rvserved: accept failed: {e}");
                continue;
            }
        };
        accepted += 1;
        let manager = manager.clone();
        let opts = opts.clone();
        handles.push(std::thread::spawn(move || {
            handle_connection(stream, &manager, &opts);
        }));
        // Don't let the handle list grow without bound on a long-running
        // daemon: reap the finished ones.
        handles.retain(|h| !h.is_finished());
    }
    for h in handles {
        let _ = h.join();
    }
    0u8.into()
}
