//! Shared driver plumbing for the `rvpredict` CLI and the `rvserved`
//! daemon: report rendering, exit-code mapping, metrics recording, and
//! the daemon's framed session protocol.
//!
//! The daemon's determinism contract — each session's output is
//! byte-identical to the standalone CLI on the same trace — is enforced
//! *by construction*: both binaries render stdout/stderr through the
//! functions in this module, so there is exactly one implementation of
//! the report text, the degradation note, the consistency diagnostics and
//! the exit-code mapping.
//!
//! # Wire protocol
//!
//! A client connection to `rvserved` is a frame sequence (see
//! [`rvtrace::frame`]): one [`SessionRequest`] JSON frame, any number of
//! raw trace-byte frames (JSON or NDJSON, auto-detected), a zero-length
//! end-of-trace frame — then one [`SessionResponse`] JSON frame back from
//! the server, after which the connection closes.

use std::time::Duration;

use rvcore::session::SessionConfig;
use rvcore::{
    AtomicityReport, DeadlockReport, DetectionReport, DetectorConfig, Fault, FaultPlan, Metrics,
    WindowMode,
};
use rvtrace::{escape_json, parse_json, IngestStats, SalvageReport, Trace};

/// Exit code: detection completed, no violations, nothing undecided.
pub const EXIT_OK: u8 = 0;
/// Exit code: at least one violation found (and witness-validated) —
/// a race, a deadlock cycle or an atomicity violation, per `--kind`.
pub const EXIT_RACES: u8 = 1;
/// Exit code: usage error, unreadable/unparsable trace, or (strict mode)
/// a trace violating the sequential-consistency axioms.
pub const EXIT_USAGE: u8 = 2;
/// Exit code: no races, but some verdicts are missing (undecided COPs or
/// failed windows) — race freedom is not established.
pub const EXIT_DEGRADED: u8 = 3;

/// Parses a `W:C:KIND` fault-injection spec (KIND: `panic`, `timeout`,
/// `encode-error`) into a fault coordinate.
pub fn parse_fault_spec(spec: &str) -> Result<(usize, usize, Fault), String> {
    let mut parts = spec.splitn(3, ':');
    let window = parts
        .next()
        .and_then(|s| s.parse::<usize>().ok())
        .ok_or_else(|| format!("--inject-fault {spec}: bad window index"))?;
    let cop = parts
        .next()
        .and_then(|s| s.parse::<usize>().ok())
        .ok_or_else(|| format!("--inject-fault {spec}: bad COP index"))?;
    let fault = match parts.next() {
        Some("panic") => Fault::Panic,
        Some("timeout") => Fault::Timeout,
        Some("encode-error") => Fault::EncodeError,
        _ => {
            return Err(format!(
                "--inject-fault {spec}: kind must be panic, timeout or encode-error"
            ))
        }
    };
    Ok((window, cop, fault))
}

/// Renders a fault kind back to its spec name (the inverse of
/// [`parse_fault_spec`]'s KIND field).
fn fault_kind(fault: Fault) -> &'static str {
    match fault {
        Fault::Panic => "panic",
        Fault::Timeout => "timeout",
        Fault::EncodeError => "encode-error",
    }
}

/// Parses a `--window-mode` value (`fixed` or `cone`).
pub fn parse_window_mode(name: &str) -> Result<WindowMode, String> {
    match name {
        "fixed" => Ok(WindowMode::Fixed),
        "cone" => Ok(WindowMode::Cone),
        other => Err(format!("--window-mode must be fixed or cone, got {other}")),
    }
}

/// Renders a window mode back to its flag value (the inverse of
/// [`parse_window_mode`]).
fn window_mode_name(mode: WindowMode) -> &'static str {
    match mode {
        WindowMode::Fixed => "fixed",
        WindowMode::Cone => "cone",
    }
}

/// The violation class a run analyzes (`--kind`). All classes share the
/// ingestion, windowing and constraint machinery; only the property
/// encoded over `Φ_mhb ∧ Φ_lock ∧ Φ_cf` differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kind {
    /// Data races (the default — the paper's `Φ_race`).
    #[default]
    Race,
    /// Resource deadlocks: predictable circular lock waits.
    Deadlock,
    /// Single-variable atomicity violations (unserializable
    /// interleavings of intended-atomic blocks).
    Atomicity,
    /// Every class above, reported in that order.
    All,
}

/// Parses a `--kind` value (`race`, `deadlock`, `atomicity` or `all`).
pub fn parse_kind(name: &str) -> Result<Kind, String> {
    match name {
        "race" => Ok(Kind::Race),
        "deadlock" => Ok(Kind::Deadlock),
        "atomicity" => Ok(Kind::Atomicity),
        "all" => Ok(Kind::All),
        other => Err(format!(
            "--kind must be race, deadlock, atomicity or all, got {other}"
        )),
    }
}

/// Renders a kind back to its flag value (the inverse of [`parse_kind`]).
pub fn kind_name(kind: Kind) -> &'static str {
    match kind {
        Kind::Race => "race",
        Kind::Deadlock => "deadlock",
        Kind::Atomicity => "atomicity",
        Kind::All => "all",
    }
}

/// The `trace:` banner line both binaries print before the report.
pub fn trace_line(trace: &Trace) -> String {
    format!("trace: {}\n", trace.stats())
}

/// The maximal detector's stdout: the report summary and one line per
/// race (plus the witness schedule under `--witnesses`). Shared by the
/// whole-file, pipelined, streaming and daemon drivers, so their stdout
/// is byte-identical by construction.
pub fn render_rv_report(report: &DetectionReport, trace: &Trace, witnesses: bool) -> String {
    let mut out = String::new();
    out.push_str(&format!("{report}\n"));
    for race in &report.races {
        out.push_str(&format!("  {}\n", race.display(trace)));
        if witnesses {
            out.push_str(&format!("    witness: {}\n", race.schedule));
        }
    }
    out
}

/// The deadlock analysis stdout: a summary line plus one line per
/// validated cycle (and its witness prefix under `--witnesses`). The
/// rendering contains no timing, so it is byte-identical across runs,
/// `--jobs` values and the CLI/daemon split by construction.
pub fn render_deadlock_report(report: &DeadlockReport, trace: &Trace, witnesses: bool) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "deadlock: {} cycle(s); candidates={}, sat={}, unsat={}, unknown={}\n",
        report.n_cycles(),
        report.candidates,
        report.sat,
        report.unsat,
        report.unknown
    ));
    for c in &report.cycles {
        let locks = c
            .locks
            .iter()
            .map(|l| l.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let acquires = c
            .acquires
            .iter()
            .map(|&a| trace.event(a).to_string())
            .collect::<Vec<_>>()
            .join(" / ");
        out.push_str(&format!("  cycle {{{locks}}} blocked at {acquires}\n"));
        if witnesses {
            out.push_str(&format!("    witness: {}\n", c.schedule));
        }
    }
    out
}

/// The atomicity analysis stdout: a summary line plus one line per
/// validated violation. Deterministic, like
/// [`render_deadlock_report`].
pub fn render_atomicity_report(report: &AtomicityReport, trace: &Trace, witnesses: bool) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "atomicity: {} violation(s); candidates={}, sat={}, unsat={}, unknown={}\n",
        report.violations.len(),
        report.candidates,
        report.sat,
        report.unsat,
        report.unknown
    ));
    for v in &report.violations {
        out.push_str(&format!(
            "  violation {}: {} between {} and {}\n",
            v.signature.display(trace),
            trace.event(v.interleaved),
            trace.event(v.pair.first),
            trace.event(v.pair.second),
        ));
        if witnesses {
            out.push_str(&format!("    witness: {}\n", v.schedule));
        }
    }
    out
}

/// Maps a deadlock/atomicity analysis outcome to its exit code, with the
/// same dominance as [`rv_exit_code`]: found violations are sound
/// regardless of unknown verdicts; unknown verdicts without a violation
/// mean freedom is not established.
pub fn kind_exit_code(violations: usize, unknown: usize) -> u8 {
    if violations > 0 {
        EXIT_RACES
    } else if unknown > 0 {
        EXIT_DEGRADED
    } else {
        EXIT_OK
    }
}

/// The degradation note for a violation-free deadlock/atomicity run with
/// unknown solver verdicts, `None` otherwise.
pub fn kind_degraded_note(kind: Kind, violations: usize, unknown: usize) -> Option<String> {
    (violations == 0 && unknown > 0).then(|| {
        format!(
            "note: no {} violations found, but {unknown} candidate(s) are undecided — \
             freedom is not established for those\n",
            kind_name(kind)
        )
    })
}

/// Folds a deadlock report into the registry (`deadlock.*`).
pub fn record_deadlock_metrics(report: &DeadlockReport, metrics: &mut Metrics) {
    metrics.inc("deadlock.cycles", report.n_cycles() as u64);
    metrics.inc("deadlock.candidates", report.candidates as u64);
    metrics.inc("deadlock.sat", report.sat as u64);
    metrics.inc("deadlock.unsat", report.unsat as u64);
    metrics.inc("deadlock.unknown", report.unknown as u64);
}

/// Folds an atomicity report into the registry (`atomicity.*`).
pub fn record_atomicity_metrics(report: &AtomicityReport, metrics: &mut Metrics) {
    metrics.inc("atomicity.violations", report.violations.len() as u64);
    metrics.inc("atomicity.candidates", report.candidates as u64);
    metrics.inc("atomicity.sat", report.sat as u64);
    metrics.inc("atomicity.unsat", report.unsat as u64);
    metrics.inc("atomicity.unknown", report.unknown as u64);
}

/// The reports of one multi-class analysis run: one entry per class the
/// requested [`Kind`] selected.
#[derive(Debug, Default)]
pub struct KindRun {
    /// The race report, when the kind includes races.
    pub race: Option<DetectionReport>,
    /// The deadlock report, when the kind includes deadlocks.
    pub deadlock: Option<DeadlockReport>,
    /// The atomicity report, when the kind includes atomicity.
    pub atomicity: Option<AtomicityReport>,
}

/// Runs the violation classes selected by `kind` over one trace with one
/// shared configuration. Race detection honors the config's parallelism
/// (and `pipelined` for the `--stream` path); the deadlock and atomicity
/// analyses are windowed single-threaded passes, so their reports are
/// deterministic at any `--jobs` by construction.
pub fn run_kinds(kind: Kind, trace: &Trace, cfg: &DetectorConfig, pipelined: bool) -> KindRun {
    let mut run = KindRun::default();
    if matches!(kind, Kind::Race | Kind::All) {
        let detector = rvcore::RaceDetector::with_config(cfg.clone());
        run.race = Some(if pipelined {
            detector.detect_pipelined(trace)
        } else {
            detector.detect(trace)
        });
    }
    if matches!(kind, Kind::Deadlock | Kind::All) {
        run.deadlock = Some(
            rvcore::DeadlockDetector {
                config: cfg.clone(),
            }
            .detect(trace),
        );
    }
    if matches!(kind, Kind::Atomicity | Kind::All) {
        run.atomicity = Some(
            rvcore::AtomicityDetector {
                config: cfg.clone(),
            }
            .detect(trace),
        );
    }
    run
}

/// Renders a [`KindRun`]'s stdout: the selected class reports in fixed
/// order (races, deadlocks, atomicity). The single composition point for
/// the CLI and the daemon, so their output is byte-identical by
/// construction.
pub fn render_kind_report(run: &KindRun, trace: &Trace, witnesses: bool) -> String {
    let mut out = String::new();
    if let Some(r) = &run.race {
        out.push_str(&render_rv_report(r, trace, witnesses));
    }
    if let Some(r) = &run.deadlock {
        out.push_str(&render_deadlock_report(r, trace, witnesses));
    }
    if let Some(r) = &run.atomicity {
        out.push_str(&render_atomicity_report(r, trace, witnesses));
    }
    out
}

/// The concatenated degradation notes of a [`KindRun`] (stderr), `None`
/// when every selected class is either clean-and-complete or has found
/// violations.
pub fn kind_run_notes(run: &KindRun) -> Option<String> {
    let mut out = String::new();
    if let Some(note) = run.race.as_ref().and_then(degraded_note) {
        out.push_str(&note);
    }
    if let Some(r) = &run.deadlock {
        if let Some(note) = kind_degraded_note(Kind::Deadlock, r.n_cycles(), r.unknown) {
            out.push_str(&note);
        }
    }
    if let Some(r) = &run.atomicity {
        if let Some(note) = kind_degraded_note(Kind::Atomicity, r.violations.len(), r.unknown) {
            out.push_str(&note);
        }
    }
    (!out.is_empty()).then_some(out)
}

/// Maps a [`KindRun`] to its exit code: violations in *any* selected
/// class dominate (they are sound regardless of degradation elsewhere),
/// then any missing verdict degrades, else clean.
pub fn kind_run_exit(run: &KindRun) -> u8 {
    let violations = run.race.as_ref().map_or(0, |r| r.n_races())
        + run.deadlock.as_ref().map_or(0, |r| r.n_cycles())
        + run.atomicity.as_ref().map_or(0, |r| r.violations.len());
    if violations > 0 {
        return EXIT_RACES;
    }
    let degraded = run.race.as_ref().is_some_and(|r| r.is_degraded())
        || run.deadlock.as_ref().is_some_and(|r| r.unknown > 0)
        || run.atomicity.as_ref().is_some_and(|r| r.unknown > 0);
    if degraded {
        EXIT_DEGRADED
    } else {
        EXIT_OK
    }
}

/// Folds a [`KindRun`]'s reports into the metrics registry.
pub fn record_kind_metrics(run: &KindRun, metrics: &mut Metrics) {
    if let Some(r) = &run.race {
        metrics.merge(&r.to_metrics());
    }
    if let Some(r) = &run.deadlock {
        record_deadlock_metrics(r, metrics);
    }
    if let Some(r) = &run.atomicity {
        record_atomicity_metrics(r, metrics);
    }
}

/// The degradation note printed to stderr when a raceless run is missing
/// verdicts (the [`EXIT_DEGRADED`] case), `None` otherwise.
pub fn degraded_note(report: &DetectionReport) -> Option<String> {
    (report.n_races() == 0 && report.is_degraded()).then(|| {
        format!(
            "note: no races found, but {} COP(s) are undecided and {} window(s) \
             failed — race freedom is not established for those\n",
            report.stats.undecided, report.stats.failed_windows
        )
    })
}

/// Maps a completed detection to its exit code (races dominate
/// degradation: found races are sound regardless of failed windows).
pub fn rv_exit_code(report: &DetectionReport) -> u8 {
    if report.n_races() > 0 {
        EXIT_RACES
    } else if report.is_degraded() {
        EXIT_DEGRADED
    } else {
        EXIT_OK
    }
}

/// The strict-mode consistency gate: the stderr diagnostics for a trace
/// that violates the sequential-consistency axioms, or `None` when the
/// trace is clean. Both binaries exit [`EXIT_USAGE`] on `Some`.
pub fn consistency_error(trace: &Trace) -> Option<String> {
    let violations = rvtrace::check_consistency(trace);
    if violations.is_empty() {
        return None;
    }
    let mut out = String::from("error: trace is not sequentially consistent:\n");
    for v in violations.iter().take(5) {
        out.push_str(&format!("  {v}\n"));
    }
    if violations.len() > 5 {
        out.push_str(&format!("  ... and {} more\n", violations.len() - 5));
    }
    out.push_str("  (rerun with --lenient to salvage the consistent part)\n");
    Some(out)
}

/// Folds one [`IngestStats`] into the registry (`trace.ingest.*`).
pub fn record_ingest_metrics(ingest: &IngestStats, metrics: &mut Metrics) {
    metrics.inc("trace.ingest.bytes", ingest.bytes as u64);
    metrics.record_time("trace.ingest.parse_time", ingest.parse_time);
}

/// Event totals and the per-kind breakdown of the (possibly salvaged)
/// trace detection ran on (`trace.*`).
pub fn record_trace_metrics(trace: &Trace, metrics: &mut Metrics) {
    metrics.inc("trace.events", trace.len() as u64);
    for (kind, n) in trace.kind_counts() {
        metrics.inc(&format!("trace.kind.{kind}"), n as u64);
    }
}

/// Folds a lenient-mode salvage report into the registry (`salvage.*`).
pub fn record_salvage_metrics(report: &SalvageReport, metrics: &mut Metrics) {
    metrics.inc("salvage.total", report.total as u64);
    metrics.inc("salvage.kept", report.kept as u64);
    metrics.inc(
        "salvage.dangling_wait_links",
        report.dangling_wait_links as u64,
    );
    for (category, &n) in &report.dropped {
        metrics.inc(&format!("salvage.dropped.{category}"), n as u64);
    }
    metrics.record_time("trace.salvage_time", report.elapsed);
}

/// One session's detector settings on the wire: everything the standalone
/// CLI's flags can express for the `rv` detector, so a daemon session
/// reproduces a CLI run exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionRequest {
    /// Window size in events (`--window`).
    pub window: usize,
    /// Per-COP solver budget in seconds (`--budget`).
    pub budget_secs: u64,
    /// Per-window wall-clock budget in milliseconds (`--timeout-ms`).
    pub timeout_ms: Option<u64>,
    /// Print full witness schedules (`--witnesses`).
    pub witnesses: bool,
    /// Salvage a damaged trace instead of rejecting it (`--lenient`).
    pub lenient: bool,
    /// Re-solve per-COP timeouts in half-size windows (`--retry-split`).
    pub retry_split: bool,
    /// Disable relevance slicing (`--no-slice`).
    pub no_slice: bool,
    /// Disable the tiered cascade (`--no-tiers`).
    pub no_tiers: bool,
    /// Disable incremental solver sessions (`--no-incremental`).
    pub no_incremental: bool,
    /// Race the incremental encoding against the tier screens per COP
    /// (`--portfolio`; implies per-COP incremental sessions).
    pub portfolio: bool,
    /// Planned fault coordinates (`--inject-fault W:C:KIND`, repeatable).
    pub faults: Vec<(usize, usize, Fault)>,
    /// Window bounding discipline (`--window-mode fixed|cone`).
    pub window_mode: WindowMode,
    /// Byte budget for cone-mode cross-boundary lookback (`--spill-budget`).
    pub spill_budget: usize,
    /// Return the metrics document in the response (`--metrics`).
    pub want_metrics: bool,
    /// Violation class to analyze (`--kind race|deadlock|atomicity|all`).
    pub kind: Kind,
}

impl Default for SessionRequest {
    fn default() -> Self {
        SessionRequest {
            window: 10_000,
            budget_secs: 60,
            timeout_ms: None,
            witnesses: false,
            lenient: false,
            retry_split: false,
            no_slice: false,
            no_tiers: false,
            no_incremental: false,
            portfolio: false,
            faults: Vec::new(),
            window_mode: WindowMode::default(),
            spill_budget: DetectorConfig::default().spill_budget,
            want_metrics: false,
            kind: Kind::Race,
        }
    }
}

impl SessionRequest {
    /// The detector configuration this request describes — the exact
    /// mapping the CLI applies to its own flags.
    pub fn detector_config(&self) -> DetectorConfig {
        let mut cfg = DetectorConfig {
            window_size: self.window,
            solver_timeout: Duration::from_secs(self.budget_secs),
            retry_split: self.retry_split,
            slice: !self.no_slice,
            tiers: !self.no_tiers,
            incremental: !self.no_incremental,
            portfolio: self.portfolio,
            // Portfolio racing runs per-COP incremental sessions: batch
            // mode has no per-COP screen/solve interleaving to race.
            batch_windows: !self.portfolio,
            window_timeout: self.timeout_ms.map(Duration::from_millis),
            window_mode: self.window_mode,
            spill_budget: self.spill_budget,
            ..Default::default()
        };
        if !self.faults.is_empty() {
            let mut plan = FaultPlan::new();
            for &(w, c, fault) in &self.faults {
                plan = plan.inject(w, c, fault);
            }
            cfg.fault_plan = Some(std::sync::Arc::new(plan));
        }
        cfg
    }

    /// The session configuration for this request, with the server-side
    /// residency cap applied.
    pub fn session_config(&self, max_resident_windows: usize) -> SessionConfig {
        SessionConfig {
            detector: self.detector_config(),
            lenient: self.lenient,
            max_resident_windows,
        }
    }

    /// Serializes the request as the protocol's JSON header frame.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"window\": {}", self.window));
        out.push_str(&format!(", \"budget_secs\": {}", self.budget_secs));
        if let Some(ms) = self.timeout_ms {
            out.push_str(&format!(", \"timeout_ms\": {ms}"));
        }
        out.push_str(&format!(", \"witnesses\": {}", self.witnesses));
        out.push_str(&format!(", \"lenient\": {}", self.lenient));
        out.push_str(&format!(", \"retry_split\": {}", self.retry_split));
        out.push_str(&format!(", \"no_slice\": {}", self.no_slice));
        out.push_str(&format!(", \"no_tiers\": {}", self.no_tiers));
        out.push_str(&format!(", \"no_incremental\": {}", self.no_incremental));
        out.push_str(&format!(", \"portfolio\": {}", self.portfolio));
        out.push_str(", \"faults\": [");
        for (i, &(w, c, fault)) in self.faults.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("[{w}, {c}, {}]", escape_json(fault_kind(fault))));
        }
        out.push_str("]");
        out.push_str(&format!(
            ", \"window_mode\": {}",
            escape_json(window_mode_name(self.window_mode))
        ));
        out.push_str(&format!(", \"spill_budget\": {}", self.spill_budget));
        out.push_str(&format!(", \"want_metrics\": {}", self.want_metrics));
        out.push_str(&format!(
            ", \"kind\": {}",
            escape_json(kind_name(self.kind))
        ));
        out.push('}');
        out
    }

    /// Parses a request header frame. Unknown fields are rejected — a
    /// client speaking a newer protocol must not be half-understood.
    pub fn from_json(input: &str) -> Result<SessionRequest, String> {
        let v = parse_json(input).map_err(|e| format!("bad session request: {e}"))?;
        let obj = v
            .as_object()
            .map_err(|e| format!("bad session request: {e}"))?;
        let mut req = SessionRequest::default();
        for (key, value) in obj {
            let r: Result<(), rvtrace::JsonError> = (|| {
                match key.as_str() {
                    "window" => req.window = value.as_int()? as usize,
                    "budget_secs" => req.budget_secs = value.as_int()? as u64,
                    "timeout_ms" => req.timeout_ms = Some(value.as_int()? as u64),
                    "witnesses" => req.witnesses = value.as_bool()?,
                    "lenient" => req.lenient = value.as_bool()?,
                    "retry_split" => req.retry_split = value.as_bool()?,
                    "no_slice" => req.no_slice = value.as_bool()?,
                    "no_tiers" => req.no_tiers = value.as_bool()?,
                    "no_incremental" => req.no_incremental = value.as_bool()?,
                    "portfolio" => req.portfolio = value.as_bool()?,
                    "window_mode" => {
                        req.window_mode =
                            parse_window_mode(value.as_str()?).map_err(|m| rvtrace::JsonError {
                                message: m,
                                offset: 0,
                                snippet: String::new(),
                            })?
                    }
                    "spill_budget" => req.spill_budget = value.as_int()? as usize,
                    "want_metrics" => req.want_metrics = value.as_bool()?,
                    "kind" => {
                        req.kind = parse_kind(value.as_str()?).map_err(|m| rvtrace::JsonError {
                            message: m,
                            offset: 0,
                            snippet: String::new(),
                        })?
                    }
                    "faults" => {
                        for f in value.as_array()? {
                            let f = f.as_array()?;
                            if f.len() != 3 {
                                return Err(rvtrace::JsonError {
                                    message: "fault needs [window, cop, kind]".into(),
                                    offset: 0,
                                    snippet: String::new(),
                                });
                            }
                            let spec =
                                format!("{}:{}:{}", f[0].as_int()?, f[1].as_int()?, f[2].as_str()?);
                            let fault =
                                parse_fault_spec(&spec).map_err(|m| rvtrace::JsonError {
                                    message: m,
                                    offset: 0,
                                    snippet: String::new(),
                                })?;
                            req.faults.push(fault);
                        }
                    }
                    other => {
                        return Err(rvtrace::JsonError {
                            message: format!("unknown session request field `{other}`"),
                            offset: 0,
                            snippet: String::new(),
                        })
                    }
                }
                Ok(())
            })();
            r.map_err(|e| format!("bad session request: {e}"))?;
        }
        Ok(req)
    }
}

/// The server's one response frame: the exact stdout/stderr/exit the
/// standalone CLI would have produced, plus the metrics document when the
/// request asked for it. `error`, when set, is a parse/teardown failure
/// the *client* renders against its local file name (so even error
/// output matches the CLI byte-for-byte).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionResponse {
    /// Process exit code for the client.
    pub exit: u8,
    /// Bytes for the client's stdout, verbatim.
    pub stdout: String,
    /// Bytes for the client's stderr, verbatim.
    pub stderr: String,
    /// The metrics JSON document, when requested.
    pub metrics: Option<String>,
    /// A trace ingestion error (the [`rvtrace::JsonError`] display text)
    /// or a session teardown reason.
    pub error: Option<String>,
}

impl SessionResponse {
    /// Serializes the response as the protocol's JSON frame.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"exit\": {}", self.exit));
        out.push_str(&format!(", \"stdout\": {}", escape_json(&self.stdout)));
        out.push_str(&format!(", \"stderr\": {}", escape_json(&self.stderr)));
        if let Some(m) = &self.metrics {
            out.push_str(&format!(", \"metrics\": {}", escape_json(m)));
        }
        if let Some(e) = &self.error {
            out.push_str(&format!(", \"error\": {}", escape_json(e)));
        }
        out.push('}');
        out
    }

    /// Parses a response frame.
    pub fn from_json(input: &str) -> Result<SessionResponse, String> {
        let v = parse_json(input).map_err(|e| format!("bad session response: {e}"))?;
        let obj = v
            .as_object()
            .map_err(|e| format!("bad session response: {e}"))?;
        let mut resp = SessionResponse::default();
        for (key, value) in obj {
            let r: Result<(), rvtrace::JsonError> = (|| {
                match key.as_str() {
                    "exit" => resp.exit = value.as_int()? as u8,
                    "stdout" => resp.stdout = value.as_str()?.to_string(),
                    "stderr" => resp.stderr = value.as_str()?.to_string(),
                    "metrics" => resp.metrics = Some(value.as_str()?.to_string()),
                    "error" => resp.error = Some(value.as_str()?.to_string()),
                    other => {
                        return Err(rvtrace::JsonError {
                            message: format!("unknown session response field `{other}`"),
                            offset: 0,
                            snippet: String::new(),
                        })
                    }
                }
                Ok(())
            })();
            r.map_err(|e| format!("bad session response: {e}"))?;
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_request_roundtrips_through_json() {
        let req = SessionRequest {
            window: 300,
            budget_secs: 5,
            timeout_ms: Some(1_500),
            witnesses: true,
            lenient: false,
            retry_split: true,
            no_slice: true,
            no_tiers: false,
            no_incremental: true,
            portfolio: true,
            faults: vec![(0, 1, Fault::Panic), (2, 0, Fault::Timeout)],
            window_mode: WindowMode::Fixed,
            spill_budget: 1 << 16,
            want_metrics: true,
            kind: Kind::Deadlock,
        };
        let parsed = SessionRequest::from_json(&req.to_json()).unwrap();
        assert_eq!(parsed, req);
        assert_eq!(
            SessionRequest::from_json(&SessionRequest::default().to_json()).unwrap(),
            SessionRequest::default()
        );
    }

    #[test]
    fn session_request_config_matches_flag_semantics() {
        let req = SessionRequest {
            window: 77,
            budget_secs: 3,
            timeout_ms: Some(250),
            no_slice: true,
            no_tiers: true,
            ..SessionRequest::default()
        };
        let cfg = req.detector_config();
        assert_eq!(cfg.window_size, 77);
        assert_eq!(cfg.solver_timeout, Duration::from_secs(3));
        assert_eq!(cfg.window_timeout, Some(Duration::from_millis(250)));
        assert!(!cfg.slice && !cfg.tiers);
        assert!(cfg.fault_plan.is_none());
        assert_eq!(cfg.window_mode, WindowMode::Cone, "cone is the default");
        assert_eq!(cfg.spill_budget, DetectorConfig::default().spill_budget);

        let fixed = SessionRequest {
            window_mode: WindowMode::Fixed,
            spill_budget: 512,
            ..SessionRequest::default()
        }
        .detector_config();
        assert_eq!(fixed.window_mode, WindowMode::Fixed);
        assert_eq!(fixed.spill_budget, 512);
        assert_eq!(fixed.spill_events(), 0, "fixed mode never looks back");

        let default_cfg = SessionRequest::default().detector_config();
        assert!(default_cfg.incremental && !default_cfg.portfolio);
        assert!(default_cfg.batch_windows);
        let ablated = SessionRequest {
            no_incremental: true,
            ..SessionRequest::default()
        }
        .detector_config();
        assert!(!ablated.incremental && ablated.batch_windows);
        let racing = SessionRequest {
            portfolio: true,
            ..SessionRequest::default()
        }
        .detector_config();
        assert!(
            racing.portfolio && racing.incremental && !racing.batch_windows,
            "portfolio implies per-COP incremental sessions"
        );
    }

    #[test]
    fn kind_parses_and_rejects() {
        assert_eq!(parse_kind("race").unwrap(), Kind::Race);
        assert_eq!(parse_kind("deadlock").unwrap(), Kind::Deadlock);
        assert_eq!(parse_kind("atomicity").unwrap(), Kind::Atomicity);
        assert_eq!(parse_kind("all").unwrap(), Kind::All);
        assert!(parse_kind("livelock").is_err());
        for k in [Kind::Race, Kind::Deadlock, Kind::Atomicity, Kind::All] {
            assert_eq!(parse_kind(kind_name(k)).unwrap(), k);
        }
        assert!(
            SessionRequest::from_json("{\"kind\": \"livelock\"}").is_err(),
            "bad kind on the wire is rejected, not defaulted"
        );
        // Absent kind defaults to race (older clients).
        assert_eq!(
            SessionRequest::from_json("{\"window\": 5}").unwrap().kind,
            Kind::Race
        );
    }

    #[test]
    fn kind_exit_codes_and_notes() {
        assert_eq!(kind_exit_code(1, 5), EXIT_RACES);
        assert_eq!(kind_exit_code(0, 2), EXIT_DEGRADED);
        assert_eq!(kind_exit_code(0, 0), EXIT_OK);
        assert!(kind_degraded_note(Kind::Deadlock, 1, 5).is_none());
        assert!(kind_degraded_note(Kind::Deadlock, 0, 0).is_none());
        let note = kind_degraded_note(Kind::Atomicity, 0, 2).unwrap();
        assert!(note.contains("atomicity") && note.contains("2 candidate(s)"));
    }

    #[test]
    fn window_mode_parses_and_rejects() {
        assert_eq!(parse_window_mode("fixed").unwrap(), WindowMode::Fixed);
        assert_eq!(parse_window_mode("cone").unwrap(), WindowMode::Cone);
        assert!(parse_window_mode("adaptive").is_err());
        assert!(
            SessionRequest::from_json("{\"window_mode\": \"adaptive\"}").is_err(),
            "bad mode on the wire is rejected, not defaulted"
        );
    }

    #[test]
    fn session_response_roundtrips_with_tricky_strings() {
        let resp = SessionResponse {
            exit: 3,
            stdout: "line one\nline \"two\"\n\ttabbed\n".into(),
            stderr: "unicode: αβγ — ok\n".into(),
            metrics: Some("{\n  \"counters\": {}\n}".into()),
            error: None,
        };
        assert_eq!(SessionResponse::from_json(&resp.to_json()).unwrap(), resp);
    }

    #[test]
    fn unknown_request_fields_rejected() {
        assert!(SessionRequest::from_json("{\"windw\": 3}").is_err());
        assert!(SessionResponse::from_json("{\"exitcode\": 3}").is_err());
    }
}
