//! # rvpredict — maximal sound predictive race detection in Rust
//!
//! A from-scratch reproduction of *Maximal Sound Predictive Race Detection
//! with Control Flow Abstraction* (Huang, Meredith, Roşu — PLDI 2014),
//! re-exporting the whole stack:
//!
//! * [`trace`](rvtrace) — the §2 event model with `branch` events,
//!   consistency axioms, windows, witness schedules;
//! * [`smt`](rvsmt) — a DPLL(T) solver for Integer Difference Logic
//!   (CDCL SAT core + negative-cycle theory), standing in for Z3/Yices;
//! * [`core`](rvcore) — the §3 maximal race detection algorithm
//!   (COPs, quick check, `Φ_mhb ∧ Φ_lock ∧ Φ_race` encoder, witness
//!   extraction and validation, windowed driver);
//! * [`baselines`](rvbaselines) — the §5 comparison detectors: HB, CP and
//!   Said et al.;
//! * [`sim`](rvsim) — the mini concurrent language, interpreter and the
//!   Table 1 workload generators.
//!
//! # Quickstart
//!
//! ```
//! use rvpredict::{RaceDetector, ThreadId, TraceBuilder};
//!
//! // Record an execution (normally produced by an instrumented run).
//! let mut b = TraceBuilder::new();
//! let x = b.var("x");
//! let t2 = b.fork(ThreadId::MAIN);
//! b.write(ThreadId::MAIN, x, 1);
//! b.read(t2, x, 1);
//! let trace = b.finish();
//!
//! // Ask the maximal detector whether any sound technique could prove a race.
//! let report = RaceDetector::new().detect(&trace);
//! assert_eq!(report.n_races(), 1);
//! println!("{}", report.races[0].display(&trace));
//! ```

#![warn(missing_docs)]

pub mod driver;

pub use rvbaselines::{
    CpDetector, HbDetector, MaximalDetector, RaceDetectorTool, SaidDetector, ToolReport,
};
pub use rvcore::{
    encode, encode_with_skeleton, extract_witness, oracle_atomicity, oracle_deadlocks,
    oracle_races, AtomicPair, AtomicityDetector, AtomicityReport, AtomicityViolation, Cone,
    ConsistencyMode, DeadlockCycle, DeadlockDetector, DeadlockReport, DetectionReport,
    DetectionStats, DetectorConfig, EncoderOptions, FailedWindow, Fault, FaultPlan, Histogram,
    Metrics, PhaseTimer, PublishedSet, RaceDetector, RaceReport, SolverTotals, StreamDetection,
    Tier, TierAnalysis, TierDecision, UndecidedReason, WindowMode, WindowResult, WindowSkeleton,
    Witness, METRICS_SCHEMA_VERSION, SPILL_EVENT_BYTES,
};
// `rvinstrument::Session` (below) already owns the bare `Session` name, so
// the daemon-side detection session is re-exported as `DetectionSession`.
pub use rvcore::{
    Session as DetectionSession, SessionConfig, SessionError, SessionManager, SessionOutcome,
};
pub use rvinstrument::{
    guard as traced_guard, spawn as traced_spawn, Session, TracedMutex, TracedVar,
};
pub use rvsim::{execute, workloads, ExecConfig, Outcome, Program, Scheduler};
pub use rvsmt::{Budget, FormulaBuilder, SmtResult, Solver};
pub use rvtrace::{
    check_consistency, check_schedule, escape_json, from_json, from_json_data,
    from_json_data_with_stats, from_json_with_stats, parse_json, read_frame, read_trace,
    read_trace_data, salvage_trace, schedule_read_values, to_json, to_ndjson, validate_wait_links,
    write_frame, Cop, Event, EventId, EventKind, IngestStats, JsonError, JsonValue, Loc, LockId,
    RaceSignature, SalvageReport, Schedule, ScheduleError, StreamFormat, StreamParser, ThreadId,
    Trace, TraceBuilder, TraceData, TraceError, VarId, View, ViewExt, WindowBoundary, WindowStream,
    MAX_FRAME,
};
